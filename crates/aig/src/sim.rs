//! 64-way parallel bit-vector simulation.
//!
//! Because the manager is append-only, node indices are a topological
//! order: whole-graph simulation is a single linear pass. Sweeping engines
//! use the resulting per-node *signatures* to seed candidate equivalence
//! classes, and feed SAT counterexamples back in as fresh patterns to
//! refine them.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::aig::Aig;
use crate::lit::{Lit, Var};
use crate::node::Node;

/// A parallel simulator holding `words * 64` patterns for every node.
///
/// ```
/// use cbq_aig::{Aig, sim::BitSim};
/// let mut aig = Aig::new();
/// let a = aig.add_input().lit();
/// let b = aig.add_input().lit();
/// let f = aig.and(a, b);
/// let mut sim = BitSim::new(&aig, 1);
/// sim.set_input_word(&aig, 0, 0, 0b1100);
/// sim.set_input_word(&aig, 1, 0, 0b1010);
/// sim.run(&aig);
/// assert_eq!(sim.lit_word(f, 0) & 0b1111, 0b1000);
/// ```
#[derive(Clone, Debug)]
pub struct BitSim {
    words: usize,
    vals: Vec<u64>,
}

impl BitSim {
    /// Creates a simulator with `words` 64-bit pattern words per node, all
    /// zero.
    pub fn new(aig: &Aig, words: usize) -> BitSim {
        assert!(words > 0, "need at least one simulation word");
        BitSim {
            words,
            vals: vec![0; aig.num_nodes() * words],
        }
    }

    /// Creates a simulator with uniformly random input patterns and runs it.
    pub fn random(aig: &Aig, words: usize, seed: u64) -> BitSim {
        let mut sim = BitSim::new(aig, words);
        sim.randomize_inputs(aig, seed);
        sim.run(aig);
        sim
    }

    /// Number of 64-bit words per node.
    pub fn words(&self) -> usize {
        self.words
    }

    /// Total number of patterns (`words * 64`).
    pub fn num_patterns(&self) -> usize {
        self.words * 64
    }

    /// Fills every input with fresh random patterns (deterministic in
    /// `seed`).
    pub fn randomize_inputs(&mut self, aig: &Aig, seed: u64) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for v in aig.inputs() {
            for w in 0..self.words {
                let word: u64 = rng.gen();
                self.vals[v.index() * self.words + w] = word;
            }
        }
    }

    /// Sets one pattern word of input number `input_index`.
    ///
    /// # Panics
    ///
    /// Panics if the input or word index is out of range.
    pub fn set_input_word(&mut self, aig: &Aig, input_index: usize, word: usize, value: u64) {
        let v = aig.input_var(input_index);
        assert!(word < self.words);
        self.vals[v.index() * self.words + word] = value;
    }

    /// Injects a single concrete input assignment into pattern bit
    /// `bit` (counted across all words), leaving other patterns untouched.
    ///
    /// Used to replay SAT counterexamples so a future [`BitSim::run`] will
    /// distinguish nodes the counterexample separates.
    pub fn set_pattern(&mut self, aig: &Aig, bit: usize, assignment: &[bool]) {
        assert!(bit < self.num_patterns());
        let (word, off) = (bit / 64, bit % 64);
        for (i, v) in aig.inputs().iter().enumerate() {
            let idx = v.index() * self.words + word;
            let mask = 1u64 << off;
            if assignment.get(i).copied().unwrap_or(false) {
                self.vals[idx] |= mask;
            } else {
                self.vals[idx] &= !mask;
            }
        }
    }

    /// Re-evaluates every AND gate from the current input patterns.
    ///
    /// Grows internal storage if the AIG gained nodes since construction.
    pub fn run(&mut self, aig: &Aig) {
        self.vals.resize(aig.num_nodes() * self.words, 0);
        for (idx, node) in aig.nodes().iter().enumerate() {
            if let Node::And { f0, f1 } = *node {
                for w in 0..self.words {
                    let a = self.edge_word(f0, w);
                    let b = self.edge_word(f1, w);
                    self.vals[idx * self.words + w] = a & b;
                }
            }
        }
    }

    fn edge_word(&self, l: Lit, w: usize) -> u64 {
        let raw = self.vals[l.var().index() * self.words + w];
        if l.is_complemented() {
            !raw
        } else {
            raw
        }
    }

    /// The pattern word `w` of literal `l` (complement applied).
    pub fn lit_word(&self, l: Lit, w: usize) -> u64 {
        self.edge_word(l, w)
    }

    /// The full signature of a literal as an owned vector of words.
    pub fn signature(&self, l: Lit) -> Vec<u64> {
        (0..self.words).map(|w| self.edge_word(l, w)).collect()
    }

    /// A phase-normalised signature: the signature of `l` or of `!l`,
    /// whichever has bit 0 clear, together with the flag saying whether it
    /// was complemented. Nodes that are equivalent *modulo complementation*
    /// normalise to equal keys.
    pub fn normalized_signature(&self, l: Lit) -> (Vec<u64>, bool) {
        let flip = self.edge_word(l, 0) & 1 != 0;
        (self.signature(l.xor_sign(flip)), flip)
    }

    /// True iff the signatures of `a` and `b` are identical.
    pub fn same_signature(&self, a: Lit, b: Lit) -> bool {
        (0..self.words).all(|w| self.edge_word(a, w) == self.edge_word(b, w))
    }

    /// Whether any simulated pattern distinguishes `a` from `b`; if so,
    /// returns the bit index of one such pattern.
    pub fn distinguishing_pattern(&self, a: Lit, b: Lit) -> Option<usize> {
        for w in 0..self.words {
            let diff = self.edge_word(a, w) ^ self.edge_word(b, w);
            if diff != 0 {
                return Some(w * 64 + diff.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Extracts the concrete input assignment of pattern bit `bit`.
    pub fn pattern_assignment(&self, aig: &Aig, bit: usize) -> Vec<bool> {
        let (word, off) = (bit / 64, bit % 64);
        aig.inputs()
            .iter()
            .map(|v| (self.vals[v.index() * self.words + word] >> off) & 1 != 0)
            .collect()
    }

    /// Value of variable `v` in pattern bit `bit` (no complement).
    pub fn var_bit(&self, v: Var, bit: usize) -> bool {
        let (word, off) = (bit / 64, bit % 64);
        (self.vals[v.index() * self.words + word] >> off) & 1 != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulation_matches_eval() {
        let mut aig = Aig::new();
        let ins: Vec<Lit> = (0..4).map(|_| aig.add_input().lit()).collect();
        let f = {
            let x = aig.xor(ins[0], ins[1]);
            let y = aig.and(ins[2], ins[3]);
            aig.or(x, y)
        };
        let sim = BitSim::random(&aig, 2, 42);
        for bit in [0usize, 1, 17, 63, 64, 100, 127] {
            let asg = sim.pattern_assignment(&aig, bit);
            let (word, off) = (bit / 64, bit % 64);
            let simulated = (sim.lit_word(f, word) >> off) & 1 != 0;
            assert_eq!(simulated, aig.eval(f, &asg), "pattern {bit}");
        }
    }

    #[test]
    fn constant_signature_is_all_zero() {
        let mut aig = Aig::new();
        let _ = aig.add_input();
        let sim = BitSim::random(&aig, 2, 7);
        assert_eq!(sim.signature(Lit::FALSE), vec![0, 0]);
        assert_eq!(sim.signature(Lit::TRUE), vec![!0u64, !0u64]);
    }

    #[test]
    fn counterexample_injection_distinguishes() {
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        let f = aig.or(a, b);
        let mut sim = BitSim::new(&aig, 1);
        // All-zero patterns: f and a have identical (zero) signatures.
        sim.run(&aig);
        assert!(sim.same_signature(f, a));
        // Inject the distinguishing assignment a=0, b=1 at bit 5.
        sim.set_pattern(&aig, 5, &[false, true]);
        sim.run(&aig);
        assert!(!sim.same_signature(f, a));
        assert_eq!(sim.distinguishing_pattern(f, a), Some(5));
    }

    #[test]
    fn normalized_signature_merges_phases() {
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        let f = aig.and(a, b);
        let sim = BitSim::random(&aig, 2, 3);
        let (sf, pf) = sim.normalized_signature(f);
        let (sg, pg) = sim.normalized_signature(!f);
        assert_eq!(sf, sg);
        assert_ne!(pf, pg);
    }

    #[test]
    fn grows_with_new_nodes() {
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        let mut sim = BitSim::random(&aig, 1, 9);
        let f = aig.and(a, b);
        sim.run(&aig);
        assert_eq!(sim.lit_word(f, 0), sim.lit_word(a, 0) & sim.lit_word(b, 0));
    }
}
