//! The acceptance criterion of the state-set sweeping subsystem: with
//! sweeping enabled, the circuit engine's `reached_size` and median
//! `frontier_sizes` strictly decrease versus `--sweep off` on several E6
//! bench models, while the verdict (classification and minimal
//! counterexample depth) is preserved everywhere.

use cbq::ckt::generators;
use cbq::ckt::Network;
use cbq::mc::sweep::SweepConfig;
use cbq::mc::CircuitUmcStats;
use cbq::prelude::*;
use cbq_bench::{median, verdict_cell};

/// E6 suite members with multi-step traversals or redundancy-heavy
/// frontiers — the workloads sweeping exists for. (The one-iteration
/// safe models converge before any cross-iteration redundancy builds
/// up; they are covered by the no-regression sweep below.)
fn compaction_models() -> Vec<Network> {
    vec![
        generators::bounded_counter_gap(6, 20, 50),
        generators::gray_counter(10),
        generators::token_ring_bug(8),
        generators::shift_ones(8),
    ]
}

fn run(net: &Network, sweep: Option<SweepConfig>) -> (Verdict, CircuitUmcStats) {
    let engine = CircuitUmc {
        sweep,
        ..CircuitUmc::default()
    };
    let run = engine.check(net, &Budget::unlimited());
    let detail = run
        .detail::<CircuitUmcStats>()
        .expect("circuit stats")
        .clone();
    (run.verdict, detail)
}

#[test]
fn sweeping_strictly_shrinks_state_sets_on_e6_models() {
    let mut strict_wins = 0;
    for net in compaction_models() {
        let (v_off, d_off) = run(&net, None);
        let (v_on, d_on) = run(&net, Some(SweepConfig::eager()));
        assert_eq!(
            verdict_cell(&v_off),
            verdict_cell(&v_on),
            "{}: sweeping changed the verdict",
            net.name()
        );
        if let Verdict::Unsafe { trace } = &v_on {
            assert!(trace.validates(&net), "{}: swept trace bogus", net.name());
        }
        assert_eq!(
            d_off.frontier_sizes.len(),
            d_on.frontier_sizes.len(),
            "{}: sweeping changed the iteration structure",
            net.name()
        );
        assert!(d_on.sweep.runs > 0, "{}: eager sweep never ran", net.name());
        let (m_off, m_on) = (median(&d_off.frontier_sizes), median(&d_on.frontier_sizes));
        assert!(
            d_on.reached_size <= d_off.reached_size && m_on <= m_off,
            "{}: sweeping grew a state set (reached {} -> {}, median frontier {} -> {})",
            net.name(),
            d_off.reached_size,
            d_on.reached_size,
            m_off,
            m_on
        );
        if d_on.reached_size < d_off.reached_size && m_on < m_off {
            strict_wins += 1;
        }
    }
    assert!(
        strict_wins >= 3,
        "sweeping strictly shrank both metrics on only {strict_wins} models (need 3)"
    );
}

#[test]
fn sweeping_never_regresses_one_iteration_models() {
    // The fast-converging safe members of the E6 suite: sweeping must
    // keep their verdicts and never grow their state sets.
    for net in [
        generators::token_ring(10),
        generators::arbiter(7),
        generators::mutex(),
        generators::lfsr(10, &[0, 2, 3, 5]),
        generators::fifo_ctrl(4),
    ] {
        let (v_off, d_off) = run(&net, None);
        let (v_on, d_on) = run(&net, Some(SweepConfig::eager()));
        assert_eq!(verdict_cell(&v_off), verdict_cell(&v_on), "{}", net.name());
        assert!(
            d_on.reached_size <= d_off.reached_size,
            "{}: reached grew {} -> {}",
            net.name(),
            d_off.reached_size,
            d_on.reached_size
        );
        assert!(
            median(&d_on.frontier_sizes) <= median(&d_off.frontier_sizes),
            "{}: median frontier grew",
            net.name()
        );
    }
}
