//! Shared pre-image construction (Section 3 of the paper).
//!
//! "Pre-image adopts quantification by substitution (also called
//! in-lining): ∃y.(y ≡ δ) ∧ P(y) = P(δ). … in backward reachability, the
//! transition relation is a conjunction of next state variables defined in
//! terms of current state variables" — so every next-state variable is
//! eliminated for free, and only the primary inputs remain to be
//! quantified by circuit-based quantification.

use cbq_aig::{Aig, Lit, Var};
use cbq_ckt::Network;

/// The *raw* pre-image formula of a state set `target(s)`:
/// `target[s ← δ(s, i)]`, a function of current state `s` and primary
/// inputs `i`. No input quantification is performed.
pub fn preimage_formula(aig: &mut Aig, net: &Network, target: Lit) -> Lit {
    let defs: Vec<(Var, Lit)> = net.next_state_defs();
    aig.compose(target, &defs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbq_ckt::random::random_function;
    use cbq_ckt::{generators, Network};

    /// Exhaustively checks `preimage_formula` against the definition:
    /// `pre(s, i) == target(δ(s, i))` for every complete assignment.
    fn check_preimage_semantics(net: &Network) {
        let mut aig = net.aig().clone();
        let latches = net.latch_vars();
        let pis = net.primary_inputs().to_vec();
        let n_in = aig.num_inputs();
        assert!(n_in <= 10, "exhaustive check needs a small network");
        // Targets over the latches: each single latch, their conjunction,
        // and their parity (exercises shared and disjoint cones).
        let mut targets: Vec<Lit> = latches.iter().map(|v| v.lit()).collect();
        let latch_lits: Vec<Lit> = latches.iter().map(|v| v.lit()).collect();
        targets.push(aig.and_many(&latch_lits));
        let mut parity = Lit::FALSE;
        for l in &latch_lits {
            parity = aig.xor(parity, *l);
        }
        targets.push(parity);
        for &target in &targets {
            let pre = preimage_formula(&mut aig, net, target);
            for mask in 0..1u32 << n_in {
                let asg: Vec<bool> = (0..n_in).map(|i| mask >> i & 1 != 0).collect();
                let state: Vec<bool> = latches
                    .iter()
                    .map(|v| asg[aig.input_index(*v).unwrap()])
                    .collect();
                let inputs: Vec<bool> = pis
                    .iter()
                    .map(|v| asg[aig.input_index(*v).unwrap()])
                    .collect();
                let (next, _) = net.step(&state, &inputs);
                // Evaluate the target at the successor state (the input
                // values are irrelevant to a latch-only target).
                let mut asg_next = asg.clone();
                for (v, nv) in latches.iter().zip(&next) {
                    asg_next[aig.input_index(*v).unwrap()] = *nv;
                }
                assert_eq!(
                    aig.eval(pre, &asg),
                    aig.eval(target, &asg_next),
                    "{}: pre-image disagrees with enumeration at mask {mask:#b}",
                    net.name()
                );
            }
        }
    }

    /// A random sequential network: every next-state function and the bad
    /// output are random functions over the latches and inputs.
    fn random_network(n_latches: usize, n_inputs: usize, gates: usize, seed: u64) -> Network {
        let mut b = Network::builder(format!("rnd{seed}"));
        let latches: Vec<Var> = (0..n_latches).map(|i| b.add_latch(i % 2 == 0)).collect();
        let inputs: Vec<Var> = (0..n_inputs).map(|_| b.add_input()).collect();
        let pool: Vec<Lit> = latches.iter().chain(&inputs).map(|v| v.lit()).collect();
        for (k, l) in latches.iter().enumerate() {
            let next = random_function(b.aig_mut(), &pool, gates, seed.wrapping_add(k as u64));
            b.set_next(*l, next);
        }
        let bad = random_function(b.aig_mut(), &pool, gates, seed.wrapping_add(97));
        b.build(bad)
    }

    #[test]
    fn preimage_matches_truth_table_on_random_networks() {
        for seed in [3u64, 17, 41, 1009] {
            check_preimage_semantics(&random_network(3, 2, 12, seed));
            check_preimage_semantics(&random_network(4, 1, 20, seed.wrapping_mul(31)));
        }
    }

    #[test]
    fn preimage_with_constant_next_state_functions() {
        // Latches stuck at 1, stuck at 0, and a live one: substitution
        // must collapse the constant positions.
        let mut b = Network::builder("const-next");
        let l0 = b.add_latch(false);
        let l1 = b.add_latch(true);
        let l2 = b.add_latch(false);
        let i0 = b.add_input();
        b.set_next(l0, Lit::TRUE);
        b.set_next(l1, Lit::FALSE);
        let live = b.aig_mut().xor(l2.lit(), i0.lit());
        b.set_next(l2, live);
        let bad = b.aig_mut().and(l0.lit(), l1.lit());
        let net = b.build(bad);
        check_preimage_semantics(&net);
        // Directly: pre(l0 ∧ ¬l1) is TRUE (the constants always land
        // there), pre(¬l0) is FALSE.
        let mut aig = net.aig().clone();
        let latches = net.latch_vars();
        let t = {
            let l0 = latches[0].lit();
            let l1 = latches[1].lit();
            aig.and(l0, !l1)
        };
        assert_eq!(preimage_formula(&mut aig, &net, t), Lit::TRUE);
        assert_eq!(
            preimage_formula(&mut aig, &net, !latches[0].lit()),
            Lit::FALSE
        );
    }

    #[test]
    fn preimage_with_duplicated_next_state_functions() {
        // Two latches sharing one next-state function: after one step
        // they are equal, so pre(l0 ≠ l1) must be FALSE and
        // pre(l0 == l1) must be TRUE.
        let mut b = Network::builder("dup-next");
        let l0 = b.add_latch(false);
        let l1 = b.add_latch(true);
        let i0 = b.add_input();
        let shared = b.aig_mut().xor(l0.lit(), i0.lit());
        b.set_next(l0, shared);
        b.set_next(l1, shared);
        let bad = b.aig_mut().and(l0.lit(), l1.lit());
        let net = b.build(bad);
        check_preimage_semantics(&net);
        let mut aig = net.aig().clone();
        let latches = net.latch_vars();
        let diff = aig.xor(latches[0].lit(), latches[1].lit());
        assert_eq!(preimage_formula(&mut aig, &net, diff), Lit::FALSE);
        assert_eq!(preimage_formula(&mut aig, &net, !diff), Lit::TRUE);
    }

    #[test]
    fn preimage_of_counter_value() {
        // For the free counter with enable: pre(count==k) contains
        // (count==k-1, en) and (count==k, !en).
        let net = generators::counter_bug(4, 3);
        let mut aig = net.aig().clone();
        // target: count == 3
        let latches = net.latch_vars();
        let target = {
            let bits: Vec<Lit> = latches
                .iter()
                .enumerate()
                .map(|(i, v)| v.lit().xor_sign(3u64 >> i & 1 != 1))
                .collect();
            aig.and_many(&bits)
        };
        let pre = preimage_formula(&mut aig, &net, target);
        // state=2 (0b010), en=1 -> in pre-image
        let mk_asg = |count: u64, en: bool| -> Vec<bool> {
            let mut asg = vec![false; aig.num_inputs()];
            for (i, v) in latches.iter().enumerate() {
                asg[aig.input_index(*v).unwrap()] = (count >> i) & 1 == 1;
            }
            let pi = net.primary_inputs()[0];
            asg[aig.input_index(pi).unwrap()] = en;
            asg
        };
        assert!(aig.eval(pre, &mk_asg(2, true)));
        assert!(aig.eval(pre, &mk_asg(3, false)));
        assert!(!aig.eval(pre, &mk_asg(2, false)));
        assert!(!aig.eval(pre, &mk_asg(1, true)));
    }
}
