//! E7 / Fig. 3 — partial quantification under growth budgets.

use criterion::{criterion_group, criterion_main, Criterion};

use cbq_bench::{partial_run, preimage_workload};
use cbq_ckt::generators;

fn bench_partial(c: &mut Criterion) {
    let net = generators::arbiter(8);
    let (aig0, pre, pis) = preimage_workload(&net, 1);
    let mut g = c.benchmark_group("e7-partial");
    g.sample_size(10);
    for budget in [Some(1.0f64), Some(1.5), Some(4.0), None] {
        let label = budget.map_or("inf".to_string(), |b| format!("{b:.1}x"));
        g.bench_function(label, |b| {
            b.iter(|| partial_run(&aig0, pre, &pis, budget))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_partial);
criterion_main!(benches);
