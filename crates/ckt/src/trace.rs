//! Counterexample traces and their replay.

use std::fmt;

use crate::network::Network;

/// A finite input trace from the initial state, used as a counterexample
/// witness: step `t` applies `inputs[t]` to the state reached after `t`
/// steps.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    inputs: Vec<Vec<bool>>,
}

impl Trace {
    /// Creates a trace from per-step primary-input vectors.
    pub fn new(inputs: Vec<Vec<bool>>) -> Trace {
        Trace { inputs }
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Whether the trace has zero steps (bad in the initial state).
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// The input vectors, step by step.
    pub fn inputs(&self) -> &[Vec<bool>] {
        &self.inputs
    }

    /// Replays the trace on `net` and returns the visited states
    /// (length `len() + 1`, starting at the initial state) and whether
    /// `bad` fired at any visited step.
    ///
    /// The counterexample is valid iff this returns `true`: `bad` must hold
    /// in some visited state (checked with the inputs applied there, or
    /// with all-zero inputs in the final state).
    pub fn replay(&self, net: &Network) -> (Vec<Vec<bool>>, bool) {
        let mut states = vec![net.initial_state()];
        let mut hit = false;
        for step_inputs in &self.inputs {
            let cur = states.last().expect("non-empty");
            let (next, bad) = net.step(cur, step_inputs);
            hit |= bad;
            states.push(next);
        }
        // Bad may hold in the final state under all-zero inputs.
        let zeros = vec![false; net.num_inputs()];
        let (_, bad_final) = net.step(states.last().expect("non-empty"), &zeros);
        (states, hit || bad_final)
    }

    /// Whether this trace is a genuine counterexample for `net`.
    pub fn validates(&self, net: &Network) -> bool {
        self.replay(net).1
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "trace of {} steps:", self.inputs.len())?;
        for (t, step) in self.inputs.iter().enumerate() {
            let bits: String = step.iter().map(|b| if *b { '1' } else { '0' }).collect();
            writeln!(f, "  step {t}: {bits}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;

    #[test]
    fn replay_detects_bad() {
        // Toggler: bad when the bit is 1, reached after one step.
        let mut b = Network::builder("toggler");
        let s = b.add_latch(false);
        let n = !s.lit();
        b.set_next(s, n);
        let net = b.build(s.lit());
        let t = Trace::new(vec![vec![]]);
        let (states, hit) = t.replay(&net);
        assert!(hit);
        assert_eq!(states.len(), 2);
        assert!(t.validates(&net));
    }

    #[test]
    fn empty_trace_checks_initial_state() {
        let mut b = Network::builder("bad-init");
        let s = b.add_latch(true);
        b.set_next(s, s.lit());
        let net = b.build(s.lit());
        assert!(Trace::default().validates(&net));
    }
}
