//! Combinational arithmetic blocks.
//!
//! The array multiplier is the classic canonical-representation killer:
//! BDDs of its middle output bits are exponential in the operand width
//! under *any* variable order (Bryant 1991), while the AIG stays linear —
//! the paper's core motivation for non-canonical state sets.

use cbq_aig::{Aig, Lit};

/// One-bit full adder; returns `(sum, carry)`.
pub fn full_adder(aig: &mut Aig, a: Lit, b: Lit, c: Lit) -> (Lit, Lit) {
    let ab = aig.xor(a, b);
    let sum = aig.xor(ab, c);
    let t1 = aig.and(a, b);
    let t2 = aig.and(ab, c);
    let carry = aig.or(t1, t2);
    (sum, carry)
}

/// Ripple-carry adder over equal-width words; returns `(sum, carry_out)`.
pub fn adder(aig: &mut Aig, xs: &[Lit], ys: &[Lit]) -> (Vec<Lit>, Lit) {
    assert_eq!(xs.len(), ys.len(), "operand width mismatch");
    let mut carry = Lit::FALSE;
    let mut out = Vec::with_capacity(xs.len());
    for (x, y) in xs.iter().zip(ys) {
        let (s, c) = full_adder(aig, *x, *y, carry);
        out.push(s);
        carry = c;
    }
    (out, carry)
}

/// Array multiplier: returns the `xs.len() + ys.len()` product bits
/// (little-endian).
pub fn multiplier(aig: &mut Aig, xs: &[Lit], ys: &[Lit]) -> Vec<Lit> {
    let n = xs.len();
    let m = ys.len();
    let mut acc = vec![Lit::FALSE; n + m];
    for (j, &y) in ys.iter().enumerate() {
        let mut carry = Lit::FALSE;
        for (i, &x) in xs.iter().enumerate() {
            let pp = aig.and(x, y);
            let (s, c) = full_adder(aig, acc[i + j], pp, carry);
            acc[i + j] = s;
            carry = c;
        }
        let mut pos = n + j;
        while pos < n + m {
            let (s, c) = full_adder(aig, acc[pos], carry, Lit::FALSE);
            acc[pos] = s;
            carry = c;
            pos += 1;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_word(aig: &Aig, bits: &[Lit], asg: &[bool]) -> u64 {
        bits.iter()
            .enumerate()
            .map(|(i, b)| (aig.eval(*b, asg) as u64) << i)
            .sum()
    }

    #[test]
    fn adder_is_correct() {
        let mut aig = Aig::new();
        let xs: Vec<Lit> = (0..4).map(|_| aig.add_input().lit()).collect();
        let ys: Vec<Lit> = (0..4).map(|_| aig.add_input().lit()).collect();
        let (sum, cout) = adder(&mut aig, &xs, &ys);
        for a in 0..16u64 {
            for b in 0..16u64 {
                let mut asg = Vec::new();
                for i in 0..4 {
                    asg.push((a >> i) & 1 == 1);
                }
                for i in 0..4 {
                    asg.push((b >> i) & 1 == 1);
                }
                let got = eval_word(&aig, &sum, &asg) + ((aig.eval(cout, &asg) as u64) << 4);
                assert_eq!(got, a + b, "{a}+{b}");
            }
        }
    }

    #[test]
    fn multiplier_is_correct() {
        let mut aig = Aig::new();
        let xs: Vec<Lit> = (0..4).map(|_| aig.add_input().lit()).collect();
        let ys: Vec<Lit> = (0..3).map(|_| aig.add_input().lit()).collect();
        let prod = multiplier(&mut aig, &xs, &ys);
        assert_eq!(prod.len(), 7);
        for a in 0..16u64 {
            for b in 0..8u64 {
                let mut asg = Vec::new();
                for i in 0..4 {
                    asg.push((a >> i) & 1 == 1);
                }
                for i in 0..3 {
                    asg.push((b >> i) & 1 == 1);
                }
                assert_eq!(eval_word(&aig, &prod, &asg), a * b, "{a}*{b}");
            }
        }
    }

    #[test]
    fn multiplier_middle_bit_bdd_blows_up_while_aig_is_linear() {
        use cbq_bdd::BddManager;
        use std::collections::HashMap;
        // 8x8 multiplier, middle product bit.
        let mut aig = Aig::new();
        let xs: Vec<Lit> = (0..8).map(|_| aig.add_input().lit()).collect();
        let ys: Vec<Lit> = (0..8).map(|_| aig.add_input().lit()).collect();
        let prod = multiplier(&mut aig, &xs, &ys);
        let mid = prod[10];
        let aig_size = aig.cone_size(mid);
        let var_level: HashMap<_, _> = aig
            .support(mid)
            .into_iter()
            .enumerate()
            .map(|(i, v)| (v, i as u32))
            .collect();
        let mut mgr = BddManager::new(var_level.len());
        // The BDD is far larger than the AIG cone (canonicity tax); give a
        // generous cap and compare sizes.
        let b = mgr.from_aig(&aig, mid, &var_level, 2_000_000).unwrap();
        assert!(
            mgr.size(b) > 4 * aig_size,
            "bdd {} vs aig {}",
            mgr.size(b),
            aig_size
        );
    }
}
