//! Quickstart: build a small function as an AIG, existentially quantify a
//! variable with the paper's circuit-based engine, and compare the result
//! size against the naive cofactor disjunction and a BDD.
//!
//! Run with: `cargo run --example quickstart`

use cbq::prelude::*;
use cbq::quant::{exists_bdd, exists_many};

fn main() {
    // F(x, y, z, w) = (x ? (y ^ z) : (z & w)) | (y & w)
    let mut aig = Aig::new();
    let x = aig.add_input();
    let y = aig.add_input();
    let z = aig.add_input();
    let w = aig.add_input();
    let f = {
        let t = aig.xor(y.lit(), z.lit());
        let e = aig.and(z.lit(), w.lit());
        let m = aig.ite(x.lit(), t, e);
        let g = aig.and(y.lit(), w.lit());
        aig.or(m, g)
    };
    println!("F has {} AND gates over {} inputs", aig.cone_size(f), 4);

    // Naive quantification: F|x=1 ∨ F|x=0 with no compaction.
    let mut cnf = AigCnf::new();
    let naive = exists_many(&mut aig, f, &[x], &mut cnf, &QuantConfig::naive());
    println!(
        "∃x.F naive cofactor disjunction: {} AND gates",
        aig.cone_size(naive.lit)
    );

    // The paper's flow: merge phase + optimisation phase.
    let full = exists_many(&mut aig, f, &[x], &mut cnf, &QuantConfig::full());
    println!(
        "∃x.F circuit-based quantification: {} AND gates",
        aig.cone_size(full.lit)
    );

    // Canonical baseline for reference.
    let (blit, bdd_nodes) = exists_bdd(&mut aig, f, &[x], usize::MAX).expect("no cap");
    println!("∃x.F as a BDD: {bdd_nodes} decision nodes");

    // All three must agree, of course.
    assert!(cnf.prove_equiv(&aig, naive.lit, full.lit, None).is_equiv());
    assert!(cnf.prove_equiv(&aig, full.lit, blit, None).is_equiv());
    println!("all three representations are equivalent ✓");

    // The result no longer depends on x.
    assert!(!aig.support_contains(full.lit, x));
    println!("and x has left the support ✓");
}
