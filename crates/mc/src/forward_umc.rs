//! Forward reachability with circuit-based quantification — an extension
//! beyond the paper's backward traversal.
//!
//! Backward pre-image enjoys free next-state elimination by in-lining;
//! forward **image** does not: `Img(R)(s') = ∃s,i. T(s,i,s') ∧ R(s)`
//! requires quantifying *all* current-state and input variables out of a
//! genuine transition-relation conjunction. This engine exercises the
//! quantification machinery far harder than pre-image and demonstrates
//! that the circuit representation supports both directions; the
//! residual policy (naive completion or all-solutions enumeration)
//! matters much more here, and so does the between-iterations state-set
//! sweep ([`crate::sweep`]) — image computation churns through far more
//! temporary nodes per step.

use cbq_aig::{Aig, Lit, Var};
use cbq_ckt::{Network, Trace};
use cbq_cnf::AigCnf;
use cbq_core::{exists_many, QuantConfig};
use cbq_sat::SatResult;

use crate::circuit_umc::ResidualPolicy;
use crate::engine::{Budget, Engine, Meter};
use crate::ganai::all_solutions_exists;
use crate::sweep::{StateSetSweeper, SweepConfig as StateSweepConfig, SweepStats};
use crate::verdict::{McRun, McStats, Verdict};

/// Forward-reachability model checker over AIG state sets.
#[derive(Clone, Debug)]
pub struct ForwardCircuitUmc {
    /// Quantification engine configuration.
    pub quant: QuantConfig,
    /// Residual-variable policy (see [`ResidualPolicy`]).
    pub residual: ResidualPolicy,
    /// Between-iterations state-set sweeping; `None` disables it.
    pub sweep: Option<StateSweepConfig>,
    /// Iteration bound.
    pub max_iterations: usize,
}

impl Default for ForwardCircuitUmc {
    fn default() -> ForwardCircuitUmc {
        ForwardCircuitUmc {
            quant: QuantConfig::full(),
            residual: ResidualPolicy::Enumerate { max_rounds: 10_000 },
            sweep: Some(StateSweepConfig::default()),
            max_iterations: 10_000,
        }
    }
}

/// Statistics of a [`ForwardCircuitUmc`] run.
#[derive(Clone, Debug, Default)]
pub struct ForwardCircuitUmcStats {
    /// Forward iterations executed.
    pub iterations: usize,
    /// AND-gate count of each frontier (over current-state vars).
    pub frontier_sizes: Vec<usize>,
    /// Peak node count of the working AIG.
    pub peak_nodes: usize,
    /// Input/state variables aborted by partial quantification, total.
    pub quant_aborts: usize,
    /// Cofactors enumerated by the residual policy, total.
    pub ganai_cofactors: usize,
    /// State-set sweeping counters.
    pub sweep: SweepStats,
}

/// The remappable working state of one forward traversal (see the
/// backward twin in `circuit_umc.rs`).
struct Traversal {
    aig: Aig,
    cnf: AigCnf,
    pis: Vec<Var>,
    latches: Vec<Var>,
    /// Fresh next-state variables `s'`, in latch order.
    next_vars: Vec<Var>,
    /// Next-state functions δ, in latch order (trace extraction needs
    /// them to constrain predecessors).
    deltas: Vec<Lit>,
    /// The transition relation `∧ⱼ (s'ⱼ ≡ δⱼ)`.
    trans: Lit,
    bad: Lit,
    reached: Lit,
    frontier: Lit,
    frontiers: Vec<Lit>,
}

impl Traversal {
    fn new(net: &Network) -> Traversal {
        let mut aig = net.aig().clone();
        let next_vars: Vec<Var> = net.latches().iter().map(|_| aig.add_input()).collect();
        let trans = {
            let eqs: Vec<Lit> = net
                .latches()
                .iter()
                .zip(&next_vars)
                .map(|(l, nv)| aig.iff(nv.lit(), l.next))
                .collect();
            aig.and_many(&eqs)
        };
        let init = net.initial_cube().to_lit(&mut aig);
        Traversal {
            aig,
            cnf: AigCnf::new(),
            pis: net.primary_inputs().to_vec(),
            latches: net.latch_vars(),
            next_vars,
            deltas: net.latches().iter().map(|l| l.next).collect(),
            trans,
            bad: net.bad(),
            reached: init,
            frontier: init,
            frontiers: vec![init],
        }
    }

    /// Variables eliminated per image: current latches + primary inputs.
    fn elim_vars(&self) -> Vec<Var> {
        let mut elim = self.latches.clone();
        elim.extend_from_slice(&self.pis);
        elim
    }

    /// The renaming `s' → s` applied after quantification.
    fn rename(&self) -> Vec<(Var, Lit)> {
        self.next_vars
            .iter()
            .zip(&self.latches)
            .map(|(nv, l)| (*nv, l.lit()))
            .collect()
    }

    /// Hands every live literal and input variable to the sweeper.
    fn sweep(&mut self, sweeper: &mut StateSetSweeper) -> bool {
        let mut lits: Vec<&mut Lit> = vec![
            &mut self.trans,
            &mut self.bad,
            &mut self.reached,
            &mut self.frontier,
        ];
        lits.extend(self.deltas.iter_mut());
        lits.extend(self.frontiers.iter_mut());
        let vars: Vec<&mut Var> = self
            .pis
            .iter_mut()
            .chain(self.latches.iter_mut())
            .chain(self.next_vars.iter_mut())
            .collect();
        sweeper.run_if_due(&mut self.aig, &mut self.cnf, lits, vars)
    }
}

/// Bundles the typed stats into the uniform run record.
fn finish(
    verdict: Verdict,
    stats: ForwardCircuitUmcStats,
    sat_checks: u64,
    meter: &Meter,
) -> McRun {
    let common = McStats {
        engine: "forward",
        iterations: stats.iterations,
        peak_nodes: stats.peak_nodes,
        sat_checks,
        elapsed: meter.elapsed(),
    };
    McRun::new(verdict, common).with_detail(stats)
}

impl Engine for ForwardCircuitUmc {
    fn name(&self) -> &'static str {
        "forward"
    }

    /// Runs forward reachability on `net` within `budget`.
    fn check(&self, net: &Network, budget: &Budget) -> McRun {
        let meter = Meter::start(budget);
        let mut stats = ForwardCircuitUmcStats::default();
        let (verdict, sat_checks) = self.traverse(net, &meter, &mut stats);
        finish(verdict, stats, sat_checks, &meter)
    }
}

impl ForwardCircuitUmc {
    fn traverse(
        &self,
        net: &Network,
        meter: &Meter,
        stats: &mut ForwardCircuitUmcStats,
    ) -> (Verdict, u64) {
        let mut t = Traversal::new(net);
        let mut sweeper = self.sweep.clone().map(StateSetSweeper::new);
        stats.peak_nodes = t.aig.num_nodes();
        let seal = |stats: &mut ForwardCircuitUmcStats,
                    t: &Traversal,
                    sweeper: &Option<StateSetSweeper>|
         -> u64 {
            stats.peak_nodes = stats.peak_nodes.max(t.aig.num_nodes());
            let retired = sweeper.as_ref().map_or(0, |s| s.stats.retired_sat_checks);
            if let Some(sw) = sweeper {
                stats.sweep = sw.stats;
            }
            retired + t.cnf.stats().checks
        };
        if let Some(bounded) = meter.exceeded(0, t.aig.num_nodes(), 0) {
            let checks = seal(stats, &t, &sweeper);
            return (bounded, checks);
        }
        stats.frontier_sizes.push(t.aig.cone_size(t.frontier));

        for iter in 0..=self.max_iterations {
            let retired = sweeper.as_ref().map_or(0, |s| s.stats.retired_sat_checks);
            let spent = retired + t.cnf.stats().checks;
            if let Some(bounded) = meter.exceeded(iter, t.aig.num_nodes(), spent) {
                let checks = seal(stats, &t, &sweeper);
                return (bounded, checks);
            }
            stats.iterations = iter;
            // Counterexample: a frontier state fires bad under some input.
            if t.cnf.solve_under(&t.aig, &[t.frontier, t.bad]) == SatResult::Sat {
                let trace = self.extract_trace(&mut t, iter);
                let checks = seal(stats, &t, &sweeper);
                return (Verdict::Unsafe { trace }, checks);
            }
            // Image: ∃s,i. T ∧ frontier, then rename s' → s.
            let conj = t.aig.and(t.trans, t.frontier);
            let elim = t.elim_vars();
            let img_next = self.quantify(&mut t, conj, &elim, stats);
            let rename = t.rename();
            let img = t.aig.compose(img_next, &rename);
            let new = t.aig.and(img, !t.reached);
            if t.cnf.solve_under(&t.aig, &[new]) == SatResult::Unsat {
                let checks = seal(stats, &t, &sweeper);
                return (
                    Verdict::Safe {
                        iterations: iter + 1,
                    },
                    checks,
                );
            }
            t.frontiers.push(new);
            t.reached = t.aig.or(t.reached, new);
            t.frontier = new;
            stats.peak_nodes = stats.peak_nodes.max(t.aig.num_nodes());
            if let Some(sw) = &mut sweeper {
                t.sweep(sw);
            }
            stats.frontier_sizes.push(t.aig.cone_size(t.frontier));
        }
        let checks = seal(stats, &t, &sweeper);
        let verdict = Verdict::Unknown {
            reason: format!("iteration bound {} reached", self.max_iterations),
        };
        (verdict, checks)
    }

    fn quantify(
        &self,
        t: &mut Traversal,
        f: Lit,
        vars: &[Var],
        stats: &mut ForwardCircuitUmcStats,
    ) -> Lit {
        let q = exists_many(&mut t.aig, f, vars, &mut t.cnf, &self.quant);
        if q.remaining.is_empty() {
            return q.lit;
        }
        stats.quant_aborts += q.remaining.len();
        match self.residual {
            ResidualPolicy::Naive => {
                exists_many(
                    &mut t.aig,
                    q.lit,
                    &q.remaining,
                    &mut t.cnf,
                    &QuantConfig::naive(),
                )
                .lit
            }
            ResidualPolicy::Enumerate { max_rounds } => {
                match all_solutions_exists(&mut t.aig, q.lit, &q.remaining, &mut t.cnf, max_rounds)
                {
                    Some((lit, g)) => {
                        stats.ganai_cofactors += g.cofactors;
                        lit
                    }
                    None => {
                        exists_many(
                            &mut t.aig,
                            q.lit,
                            &q.remaining,
                            &mut t.cnf,
                            &QuantConfig::naive(),
                        )
                        .lit
                    }
                }
            }
        }
    }

    /// Walks the counterexample backwards through the forward frontiers,
    /// then emits the input sequence in forward order.
    fn extract_trace(&self, t: &mut Traversal, level: usize) -> Trace {
        // Concrete final state (in frontier `level`) plus the bad input.
        let r = t.cnf.solve_under(&t.aig, &[t.frontiers[level], t.bad]);
        debug_assert_eq!(r, SatResult::Sat);
        let model = t.cnf.model_inputs(&t.aig);
        let mut states_rev = vec![read_vars(&t.aig, &t.latches, &model)];
        let mut inputs_rev = vec![read_vars(&t.aig, &t.pis, &model)];
        for l in (0..level).rev() {
            let target = states_rev.last().expect("non-empty").clone();
            // Predecessor: F_l(s) ∧ (δ(s,i) == target).
            let eq = {
                let eqs: Vec<Lit> = t
                    .deltas
                    .iter()
                    .zip(&target)
                    .map(|(delta, v)| delta.xor_sign(!v))
                    .collect();
                t.aig.and_many(&eqs)
            };
            let r = t.cnf.solve_under(&t.aig, &[t.frontiers[l], eq]);
            debug_assert_eq!(r, SatResult::Sat, "predecessor must exist");
            let model = t.cnf.model_inputs(&t.aig);
            states_rev.push(read_vars(&t.aig, &t.latches, &model));
            inputs_rev.push(read_vars(&t.aig, &t.pis, &model));
        }
        inputs_rev.reverse();
        Trace::new(inputs_rev)
    }
}

/// Reads the model values of a list of input variables, in order.
fn read_vars(aig: &Aig, vars: &[Var], model: &[bool]) -> Vec<bool> {
    vars.iter()
        .map(|v| model[aig.input_index(*v).expect("sequential var is an input")])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::{check_safe, check_unsafe};
    use cbq_ckt::generators;

    #[test]
    fn safe_circuits_forward() {
        for net in [
            generators::token_ring(5),
            generators::bounded_counter(4, 9),
            generators::gray_counter(4),
            generators::mutex(),
            generators::lfsr(5, &[0, 2]),
        ] {
            check_safe(&ForwardCircuitUmc::default(), &net);
        }
    }

    #[test]
    fn unsafe_circuits_forward_with_minimal_traces() {
        for (net, depth) in [
            (generators::token_ring_bug(5), 3),
            (generators::mutex_bug(), 2),
            (generators::shift_ones(4), 4),
            (generators::counter_bug(4, 5), 5),
        ] {
            check_unsafe(&ForwardCircuitUmc::default(), &net, Some(depth));
        }
    }

    #[test]
    fn forward_iterations_match_reachable_diameter() {
        // bounded_counter(3, 5): 5 reachable states (0..4), so the
        // frontier empties at iteration 5... plus the fixpoint check.
        let run = ForwardCircuitUmc::default()
            .check(&generators::bounded_counter(3, 5), &Budget::unlimited());
        match run.verdict {
            Verdict::Safe { iterations } => assert_eq!(iterations, 5),
            other => panic!("expected safe, got {other}"),
        }
    }

    #[test]
    fn naive_residual_policy_also_works() {
        let engine = ForwardCircuitUmc {
            residual: ResidualPolicy::Naive,
            ..ForwardCircuitUmc::default()
        };
        let run = engine.check(&generators::token_ring(4), &Budget::unlimited());
        assert!(run.verdict.is_safe());
    }

    #[test]
    fn eager_sweeping_agrees_forward() {
        for net in [generators::token_ring(4), generators::shift_ones(4)] {
            let plain = ForwardCircuitUmc {
                sweep: None,
                ..ForwardCircuitUmc::default()
            };
            let eager = ForwardCircuitUmc {
                sweep: Some(StateSweepConfig::eager()),
                ..ForwardCircuitUmc::default()
            };
            let rp = plain.check(&net, &Budget::unlimited());
            let re = eager.check(&net, &Budget::unlimited());
            // Concrete cex inputs may differ; classification and minimal
            // depth must not.
            match (&rp.verdict, &re.verdict) {
                (Verdict::Unsafe { trace: a }, Verdict::Unsafe { trace: b }) => {
                    assert_eq!(a.len(), b.len(), "{}: cex depth changed", net.name());
                }
                (a, b) => assert_eq!(a, b, "{}: sweep changed verdict", net.name()),
            }
            let de = re.detail::<ForwardCircuitUmcStats>().expect("stats");
            assert!(de.sweep.runs > 0, "{}: eager sweep never ran", net.name());
            if let Verdict::Unsafe { trace } = &re.verdict {
                assert!(trace.validates(&net), "{}: swept trace bogus", net.name());
            }
        }
    }
}
