//! The unified engine API: the [`Engine`] trait, resource [`Budget`]s,
//! and the name-based engine registry.
//!
//! Every model checker in this crate — circuit-based backward and forward
//! reachability, BDD reachability in both directions, BMC, k-induction,
//! IC3/PDR, and the [`crate::Portfolio`] combinator — implements the same
//! polymorphic entry point:
//!
//! ```text
//! fn check(&self, net: &Network, budget: &Budget) -> McRun
//! ```
//!
//! A [`Budget`] carries optional step, node, SAT-check, and wall-clock
//! limits; exhausting any of them yields [`Verdict::Bounded`] — the
//! paper's "abort on growth budget" philosophy lifted from the
//! quantification kernel to whole traversals. Engines are constructible
//! by registry name (`<dyn Engine>::by_name("circuit")`), which is what
//! the CLI, the benchmark harness, and the cross-engine tests dispatch
//! through.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cbq_ckt::Network;
use cbq_core::VarOrder;

use crate::bdd_umc::{BddDirection, BddUmc};
use crate::bmc::Bmc;
use crate::circuit_umc::CircuitUmc;
use crate::forward_umc::ForwardCircuitUmc;
use crate::ic3::{GenMode, Ic3};
use crate::induction::KInduction;
use crate::itp::Itp;
use crate::portfolio::Portfolio;
use crate::stateset::{PartitionConfig, PartitionCount, SplitPolicy};
use crate::sweep::SweepConfig as StateSweepConfig;
use crate::verdict::{McRun, Resource, Verdict};

/// Resource limits for one [`Engine::check`] call.
///
/// All limits are optional; [`Budget::unlimited`] (also `Default`)
/// imposes none. A limit of zero is legal and forces an immediate
/// [`Verdict::Bounded`] — engines must never hang on a tiny budget.
#[derive(Clone, Debug, Default)]
pub struct Budget {
    /// Maximum engine steps: fixpoint iterations, BMC depth frames, or
    /// induction depths, depending on the engine.
    pub max_steps: Option<usize>,
    /// Maximum nodes in the working representation (AIG or BDD).
    pub max_nodes: Option<usize>,
    /// Maximum assumption-based SAT checks.
    pub max_sat_checks: Option<u64>,
    /// Wall-clock deadline, relative to the start of the call.
    pub timeout: Option<Duration>,
    /// Cooperative cancellation flag, shared with whoever may decide the
    /// run's result is no longer needed (the parallel [`crate::Portfolio`]
    /// raises a loser's flag the moment a sibling concludes). Checked by
    /// [`Meter::exceeded`] alongside the limits; a cancelled run returns
    /// [`Verdict::Unknown`], never a conclusive answer.
    pub cancel: Option<Arc<AtomicBool>>,
}

/// Budget equality compares the four limits only: the cancel flag is a
/// runtime channel, not a limit, and two budgets that differ only in
/// their flag describe the same resource envelope.
impl PartialEq for Budget {
    fn eq(&self, other: &Budget) -> bool {
        self.max_steps == other.max_steps
            && self.max_nodes == other.max_nodes
            && self.max_sat_checks == other.max_sat_checks
            && self.timeout == other.timeout
    }
}

impl Eq for Budget {}

impl Budget {
    /// No limits at all.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// Caps engine steps (iterations / depth).
    pub fn with_steps(mut self, steps: usize) -> Budget {
        self.max_steps = Some(steps);
        self
    }

    /// Caps working-representation nodes.
    pub fn with_nodes(mut self, nodes: usize) -> Budget {
        self.max_nodes = Some(nodes);
        self
    }

    /// Caps SAT checks.
    pub fn with_sat_checks(mut self, checks: u64) -> Budget {
        self.max_sat_checks = Some(checks);
        self
    }

    /// Sets a wall-clock deadline.
    pub fn with_timeout(mut self, timeout: Duration) -> Budget {
        self.timeout = Some(timeout);
        self
    }

    /// Attaches a shared cooperative-cancellation flag.
    pub fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> Budget {
        self.cancel = Some(cancel);
        self
    }
}

/// A running budget: captures the start instant and answers "is any
/// limit exhausted?" at engine-chosen safepoints.
#[derive(Clone, Debug)]
pub struct Meter {
    start: Instant,
    budget: Budget,
}

impl Meter {
    /// Starts metering `budget` now.
    pub fn start(budget: &Budget) -> Meter {
        Meter {
            start: Instant::now(),
            budget: budget.clone(),
        }
    }

    /// Time since the meter started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// The absolute wall-clock deadline of this run, if the budget set a
    /// timeout — engines hand it to the quantification/sweep kernels for
    /// cooperative cancellation.
    pub fn deadline(&self) -> Option<Instant> {
        self.budget.timeout.map(|t| self.start + t)
    }

    /// The budget's node cap, handed to partition workers as their
    /// per-partition quantification node limit.
    pub fn node_limit(&self) -> Option<usize> {
        self.budget.max_nodes
    }

    /// The budget's cooperative-cancellation flag, if any — engines hand
    /// it to the quantification/sweep kernels alongside the deadline.
    pub fn cancel_flag(&self) -> Option<Arc<AtomicBool>> {
        self.budget.cancel.clone()
    }

    /// Whether the budget's cancel flag has been raised.
    pub fn cancelled(&self) -> bool {
        self.budget
            .cancel
            .as_ref()
            .is_some_and(|c| c.load(Ordering::Relaxed))
    }

    /// Checks the spend against every limit; `Some(Bounded)` as soon as
    /// one is exhausted — or `Some(Unknown)` if the budget's shared
    /// cancel flag has been raised, which outranks the limits: the run's
    /// answer is no longer wanted, so it must not spend more work and
    /// must not pretend a resource ran out. `steps` counts *completed*
    /// units, so a limit of `k` permits exactly `k` units and trips
    /// before the `k+1`-th.
    pub fn exceeded(&self, steps: usize, nodes: usize, sat_checks: u64) -> Option<Verdict> {
        if self.cancelled() {
            return Some(Verdict::Unknown {
                reason: "cancelled by a concurrent winner".to_string(),
            });
        }
        let trip = |resource, limit| Some(Verdict::Bounded { resource, limit });
        match self.budget.max_steps {
            Some(limit) if steps >= limit => return trip(Resource::Steps, limit as u64),
            _ => {}
        }
        match self.budget.max_nodes {
            Some(limit) if nodes > limit => return trip(Resource::Nodes, limit as u64),
            _ => {}
        }
        match self.budget.max_sat_checks {
            Some(limit) if sat_checks >= limit => return trip(Resource::SatChecks, limit),
            _ => {}
        }
        match self.budget.timeout {
            Some(limit) if self.start.elapsed() >= limit => {
                return trip(Resource::WallClock, limit.as_millis() as u64)
            }
            _ => {}
        }
        None
    }
}

/// The common interface of every unbounded model checker in this crate.
///
/// Implementations must honour `budget` at every iteration boundary:
/// a zero budget returns [`Verdict::Bounded`] without doing unbounded
/// work, never hangs. Engines are `Send + Sync` — a check borrows the
/// engine and the network immutably, so the parallel portfolio can run
/// members from scoped worker threads.
pub trait Engine: Send + Sync {
    /// The engine's registry name (`"circuit"`, `"bmc"`, …).
    fn name(&self) -> &'static str;

    /// Model-checks `net` within `budget`.
    fn check(&self, net: &Network, budget: &Budget) -> McRun;
}

/// A tuning-aware constructor: builds an engine with [`EngineTuning`]
/// applied (see [`EngineSpec::tune`]).
pub type TunedBuild = fn(&EngineTuning) -> Box<dyn Engine>;

/// A registry entry: metadata plus a default-configuration constructor.
pub struct EngineSpec {
    /// Registry name, accepted by [`by_name`] and `cbq check --engine`.
    pub name: &'static str,
    /// One-line description for `cbq engines` and `--help`.
    pub summary: &'static str,
    /// Whether the engine settles every property given enough budget
    /// (BMC, for one, can only refute).
    pub complete: bool,
    /// Whether reported counterexamples are guaranteed minimal-cex.
    pub minimal_cex: bool,
    /// Builds the engine in its default configuration.
    pub build: fn() -> Box<dyn Engine>,
    /// Builds the engine with [`EngineTuning`] applied, for engines that
    /// honour it (`None` for engines with no quantifier or sweep to
    /// tune). Keeping the hook on the spec means the registry is the
    /// single source of which engines are tunable.
    pub tune: Option<TunedBuild>,
}

/// Every registered engine, in presentation order.
pub fn registry() -> &'static [EngineSpec] {
    const REGISTRY: &[EngineSpec] = &[
        EngineSpec {
            name: "circuit",
            summary: "backward reachability on partitioned AIG state sets (the paper's engine)",
            complete: true,
            minimal_cex: true,
            build: || Box::new(CircuitUmc::default()),
            tune: Some(|tuning| {
                let mut engine = CircuitUmc::default();
                engine.sweep = tuning.sweep_of(engine.sweep);
                engine.partition = tuning.partition_of(engine.partition);
                if let Some(order) = tuning.quant_order {
                    engine.quant.order = order;
                }
                Box::new(engine)
            }),
        },
        EngineSpec {
            name: "forward",
            summary: "forward reachability with circuit-based image computation",
            complete: true,
            minimal_cex: true,
            build: || Box::new(ForwardCircuitUmc::default()),
            tune: Some(|tuning| {
                let mut engine = ForwardCircuitUmc::default();
                engine.sweep = tuning.sweep_of(engine.sweep);
                engine.partition = tuning.partition_of(engine.partition);
                if let Some(order) = tuning.quant_order {
                    engine.quant.order = order;
                }
                Box::new(engine)
            }),
        },
        EngineSpec {
            name: "bdd",
            summary: "backward BDD reachability (the canonical baseline)",
            complete: true,
            minimal_cex: true,
            build: || Box::new(BddUmc::default()),
            tune: None,
        },
        EngineSpec {
            name: "bdd-forward",
            summary: "forward BDD reachability over a monolithic transition relation",
            complete: true,
            minimal_cex: true,
            build: || {
                Box::new(BddUmc {
                    direction: BddDirection::Forward,
                    ..BddUmc::default()
                })
            },
            tune: None,
        },
        EngineSpec {
            name: "bmc",
            summary: "bounded model checking (refutation only)",
            complete: false,
            minimal_cex: true,
            build: || Box::new(Bmc::default()),
            tune: None,
        },
        EngineSpec {
            name: "kind",
            summary: "k-induction with simple-path strengthening",
            complete: true,
            minimal_cex: true,
            build: || Box::new(KInduction::default()),
            tune: None,
        },
        EngineSpec {
            name: "ic3",
            summary: "IC3/PDR: clause frames with relative-induction generalization",
            complete: true,
            // IC3 counterexamples are genuine but need not be minimal.
            minimal_cex: false,
            build: || Box::new(Ic3::default()),
            tune: Some(|tuning| {
                let mut engine = Ic3::default();
                if let Some(frames) = tuning.ic3_frames {
                    engine.max_frames = frames;
                }
                if let Some(gen) = tuning.ic3_gen {
                    engine.gen = gen;
                }
                Box::new(engine)
            }),
        },
        EngineSpec {
            name: "itp",
            summary: "Craig-interpolation reachability on the proof-logging SAT core",
            complete: true,
            // Counterexamples are delegated to a depth-capped BMC run,
            // which reports minimal traces.
            minimal_cex: true,
            build: || Box::new(Itp::default()),
            tune: Some(|tuning| {
                let mut engine = Itp::default();
                if let Some(frames) = tuning.itp_frames {
                    engine.max_frames = frames;
                }
                Box::new(engine)
            }),
        },
        EngineSpec {
            name: "portfolio",
            summary: "bmc, kind, ic3, itp, circuit, bdd — sequential slices, or parallel \
                      with a lemma bus (--portfolio-par)",
            complete: true,
            // The BMC member finds minimal traces up to its depth cap,
            // but deeper counterexamples can fall through to the IC3
            // member, which guarantees validity, not minimality.
            minimal_cex: false,
            build: || Box::new(Portfolio::standard()),
            tune: Some(|tuning| {
                if tuning.portfolio_parallel.unwrap_or(false) {
                    // The lemma bus rides on the parallel mode; it is on
                    // by default and can be ablated away.
                    Box::new(Portfolio::standard_parallel(
                        tuning.portfolio_bus.unwrap_or(true),
                    ))
                } else {
                    Box::new(Portfolio::standard())
                }
            }),
        },
    ];
    REGISTRY
}

/// Builds the engine registered under `name`, if any.
pub fn by_name(name: &str) -> Option<Box<dyn Engine>> {
    registry()
        .iter()
        .find(|spec| spec.name == name)
        .map(|spec| (spec.build)())
}

/// CLI-facing knobs layered over a registry default build
/// (`cbq check --sweep ... --quant-order ...`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EngineTuning {
    /// Force state-set sweeping on (with the default
    /// [`StateSweepConfig`]) or off; `None` keeps the engine default.
    pub sweep: Option<bool>,
    /// Quantification variable-scheduling policy; `None` keeps the
    /// engine default.
    pub quant_order: Option<VarOrder>,
    /// Initial partition count of the state set (`cbq check
    /// --partitions N|auto`); `None` keeps the engine default
    /// (monolithic).
    pub partitions: Option<PartitionCount>,
    /// Partition split policy (`cbq check --split latch|origin`); `None`
    /// keeps the engine default.
    pub split: Option<SplitPolicy>,
    /// IC3 frame-count safety net (`cbq check --ic3-frames N`); `None`
    /// keeps the engine default.
    pub ic3_frames: Option<usize>,
    /// IC3 generalization effort (`cbq check --ic3-gen
    /// core|drop|ternary|ctg`); `None` keeps the engine default
    /// ([`GenMode::Ctg`] — the full ladder). `core` leaves only the
    /// unsat-core shrink — the `e6pdr`/`e6g` ablation baseline.
    pub ic3_gen: Option<GenMode>,
    /// Interpolation unrolling-bound cap (`cbq check --itp-frames N`);
    /// `None` keeps the engine default.
    pub itp_frames: Option<usize>,
    /// Run the portfolio members as concurrent workers with
    /// first-conclusive-answer cancellation (`cbq check
    /// --portfolio-par`); `None`/`Some(false)` keeps the sequential
    /// budget-sliced default.
    pub portfolio_parallel: Option<bool>,
    /// Cross-engine lemma bus of the parallel portfolio (`cbq check
    /// --portfolio-bus on|off`); `None` keeps the default (on whenever
    /// the portfolio runs parallel). Ignored in sequential mode.
    pub portfolio_bus: Option<bool>,
}

impl EngineTuning {
    /// Whether this tuning changes nothing.
    pub fn is_default(&self) -> bool {
        *self == EngineTuning::default()
    }

    /// Applies the sweep override to an engine's default sweep setting.
    fn sweep_of(&self, default: Option<StateSweepConfig>) -> Option<StateSweepConfig> {
        match self.sweep {
            None => default,
            Some(false) => None,
            Some(true) => Some(StateSweepConfig::default()),
        }
    }

    /// Applies the partitioning overrides to an engine's default
    /// partition configuration.
    fn partition_of(&self, default: PartitionConfig) -> PartitionConfig {
        let mut cfg = match self.partitions {
            None => default,
            Some(count) => PartitionConfig::with_count(count),
        };
        if let Some(split) = self.split {
            cfg.split = split;
        }
        cfg
    }
}

/// Whether the engine registered under `name` honours [`EngineTuning`]
/// (the circuit-based traversals do; BDD/BMC/induction have no
/// quantifier or sweep to tune). Driven by [`EngineSpec::tune`].
pub fn supports_tuning(name: &str) -> bool {
    registry()
        .iter()
        .any(|spec| spec.name == name && spec.tune.is_some())
}

/// Builds the engine registered under `name` with `tuning` applied via
/// its [`EngineSpec::tune`] hook. Engines without a hook are built in
/// their default configuration.
pub fn by_name_tuned(name: &str, tuning: &EngineTuning) -> Option<Box<dyn Engine>> {
    let spec = registry().iter().find(|spec| spec.name == name)?;
    Some(match spec.tune {
        Some(tune) => tune(tuning),
        None => (spec.build)(),
    })
}

/// All registered engine names, in presentation order.
pub fn engine_names() -> Vec<&'static str> {
    registry().iter().map(|spec| spec.name).collect()
}

impl dyn Engine {
    /// Builds the engine registered under `name` — the canonical entry
    /// point: `<dyn Engine>::by_name("portfolio")`.
    pub fn by_name(name: &str) -> Option<Box<dyn Engine>> {
        by_name(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbq_ckt::generators;

    #[test]
    fn registry_names_are_unique_and_buildable() {
        let names = engine_names();
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len());
        for spec in registry() {
            let engine = (spec.build)();
            assert_eq!(engine.name(), spec.name);
        }
        assert!(by_name("no-such-engine").is_none());
    }

    #[test]
    fn dyn_dispatch_works_through_the_registry() {
        let net = generators::mutex();
        let engine = <dyn Engine>::by_name("circuit").expect("registered");
        let run = engine.check(&net, &Budget::unlimited());
        assert!(run.verdict.is_safe());
        assert_eq!(run.stats.engine, "circuit");
        assert!(run.stats.elapsed > Duration::ZERO);
    }

    #[test]
    fn tuned_builds_apply_sweep_and_order() {
        let tuning = EngineTuning {
            sweep: Some(false),
            quant_order: Some(VarOrder::StaticCost),
            partitions: Some(PartitionCount::Fixed(2)),
            split: Some(SplitPolicy::LatchCofactor),
            ..EngineTuning::default()
        };
        for name in ["circuit", "forward"] {
            assert!(supports_tuning(name));
            let engine = by_name_tuned(name, &tuning).expect("registered");
            let net = generators::mutex();
            let run = engine.check(&net, &Budget::unlimited());
            assert!(run.verdict.is_safe());
        }
        // IC3 honours its own tuning fields through the same hook.
        let ic3_tuning = EngineTuning {
            ic3_frames: Some(3),
            ic3_gen: Some(GenMode::Core),
            ..EngineTuning::default()
        };
        assert!(supports_tuning("ic3"));
        let engine = by_name_tuned("ic3", &ic3_tuning).expect("registered");
        let run = engine.check(&generators::mutex(), &Budget::unlimited());
        assert!(run.verdict.is_safe(), "got {}", run.verdict);
        // Interpolation honours its frame cap through the same hook.
        let itp_tuning = EngineTuning {
            itp_frames: Some(8),
            ..EngineTuning::default()
        };
        assert!(supports_tuning("itp"));
        let engine = by_name_tuned("itp", &itp_tuning).expect("registered");
        let run = engine.check(&generators::mutex(), &Budget::unlimited());
        assert!(run.verdict.is_safe(), "got {}", run.verdict);
        // Non-tunable engines still build (tuning is a no-op for them).
        assert!(!supports_tuning("bmc"));
        assert!(by_name_tuned("bmc", &tuning).is_some());
        assert!(by_name_tuned("no-such-engine", &tuning).is_none());
        assert!(EngineTuning::default().is_default());
        assert!(!tuning.is_default());
    }

    #[test]
    fn meter_trips_each_axis() {
        let m = Meter::start(&Budget::unlimited().with_steps(2));
        assert!(m.exceeded(1, 0, 0).is_none());
        assert!(matches!(
            m.exceeded(2, 0, 0),
            Some(Verdict::Bounded {
                resource: Resource::Steps,
                limit: 2
            })
        ));
        let m = Meter::start(&Budget::unlimited().with_nodes(100));
        assert!(m.exceeded(9, 100, 0).is_none());
        assert!(m.exceeded(9, 101, 0).is_some());
        let m = Meter::start(&Budget::unlimited().with_sat_checks(5));
        assert!(m.exceeded(0, 0, 4).is_none());
        assert!(m.exceeded(0, 0, 5).is_some());
        let m = Meter::start(&Budget::unlimited().with_timeout(Duration::ZERO));
        assert!(matches!(
            m.exceeded(0, 0, 0),
            Some(Verdict::Bounded {
                resource: Resource::WallClock,
                ..
            })
        ));
    }

    #[test]
    fn meter_honours_the_cancel_flag() {
        let flag = Arc::new(AtomicBool::new(false));
        let m = Meter::start(&Budget::unlimited().with_cancel(flag.clone()));
        assert!(m.exceeded(0, 0, 0).is_none());
        assert!(!m.cancelled());
        flag.store(true, Ordering::Relaxed);
        assert!(m.cancelled());
        // Cancellation outranks the limits and is Unknown, not Bounded —
        // a cancelled member's verdict must never look conclusive or
        // resource-bound.
        let m = Meter::start(&Budget::unlimited().with_steps(0).with_cancel(flag));
        assert!(matches!(m.exceeded(0, 0, 0), Some(Verdict::Unknown { .. })));
        // The flag is excluded from budget equality: same envelope.
        assert_eq!(m.budget, Budget::unlimited().with_steps(0));
    }
}
