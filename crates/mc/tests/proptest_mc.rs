//! Property-based cross-checks of the model-checking layer: all-solutions
//! enumeration vs circuit quantification on random functions, and all
//! four engines vs the explicit-state oracle on random small networks.

use proptest::prelude::*;

use cbq_aig::{Aig, Lit, Var};
use cbq_ckt::Network;
use cbq_cnf::AigCnf;
use cbq_core::{exists_many, QuantConfig};
use cbq_mc::ganai::all_solutions_exists;
use cbq_mc::{explicit, BddUmc, Bmc, Budget, CircuitUmc, Engine, KInduction, Verdict};

const N: usize = 6;

#[derive(Clone, Debug)]
enum Op {
    And(usize, bool, usize, bool),
    Xor(usize, bool, usize, bool),
}

fn ops_strategy(max_ops: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (any::<usize>(), any::<bool>(), any::<usize>(), any::<bool>())
                .prop_map(|(a, pa, b, pb)| Op::And(a, pa, b, pb)),
            (any::<usize>(), any::<bool>(), any::<usize>(), any::<bool>())
                .prop_map(|(a, pa, b, pb)| Op::Xor(a, pa, b, pb)),
        ],
        1..=max_ops,
    )
}

fn emit(aig: &mut Aig, pool: &mut Vec<Lit>, ops: &[Op]) -> Lit {
    for op in ops {
        let pick = |i: usize| pool[i % pool.len()];
        let l = match *op {
            Op::And(a, pa, b, pb) => {
                let (x, y) = (pick(a).xor_sign(pa), pick(b).xor_sign(pb));
                aig.and(x, y)
            }
            Op::Xor(a, pa, b, pb) => {
                let (x, y) = (pick(a).xor_sign(pa), pick(b).xor_sign(pb));
                aig.xor(x, y)
            }
        };
        pool.push(l);
    }
    *pool.last().expect("non-empty")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Enumeration by circuit cofactoring equals circuit quantification.
    #[test]
    fn enumeration_equals_quantification(ops in ops_strategy(18), nvars in 1..3usize) {
        let mut aig = Aig::new();
        let mut pool: Vec<Lit> = (0..N).map(|_| aig.add_input().lit()).collect();
        let f = emit(&mut aig, &mut pool, &ops);
        let vars: Vec<Var> = (0..nvars).map(|i| aig.input_var(i)).collect();
        let mut cnf = AigCnf::new();
        let (enumerated, _) =
            all_solutions_exists(&mut aig, f, &vars, &mut cnf, 4096).expect("converges");
        let quantified = exists_many(&mut aig, f, &vars, &mut cnf, &QuantConfig::full());
        prop_assert!(cnf.prove_equiv(&aig, enumerated, quantified.lit, None).is_equiv());
    }

    /// Random 3-latch/1-input networks: every engine agrees with the
    /// explicit-state oracle, and counterexamples replay.
    #[test]
    fn engines_agree_on_random_networks(
        next_ops in prop::collection::vec(ops_strategy(10), 3..=3),
        bad_ops in ops_strategy(8),
        inits in prop::collection::vec(any::<bool>(), 3..=3),
    ) {
        let mut b = Network::builder("random");
        let latches: Vec<Var> = inits.iter().map(|i| b.add_latch(*i)).collect();
        let _input = b.add_input();
        // Next-state and bad functions over all AIG inputs created so far.
        let base: Vec<Lit> = {
            let aig = b.aig_mut();
            aig.inputs().to_vec().iter().map(|v| v.lit()).collect()
        };
        let mut nexts = Vec::new();
        for ops in &next_ops {
            let mut pool = base.clone();
            let aig = b.aig_mut();
            nexts.push(emit(aig, &mut pool, ops));
        }
        let bad = {
            let mut pool = base.clone();
            let aig = b.aig_mut();
            emit(aig, &mut pool, &bad_ops)
        };
        for (l, n) in latches.iter().zip(nexts) {
            b.set_next(*l, n);
        }
        let net = b.build(bad);
        let oracle = explicit::shortest_cex_depth(&net, 4, 1 << 10);
        let verdicts: Vec<(&str, Verdict)> = vec![
            ("circuit", CircuitUmc::default().check(&net, &Budget::unlimited()).verdict),
            ("bdd", BddUmc::default().check(&net, &Budget::unlimited()).verdict),
            ("kind", KInduction { max_k: 20, simple_path: true, bus: None }.check(&net, &Budget::unlimited()).verdict),
        ];
        for (name, v) in &verdicts {
            match (oracle, v) {
                (None, Verdict::Safe { .. }) => {}
                (Some(d), Verdict::Unsafe { trace }) => {
                    prop_assert!(trace.validates(&net), "{} bogus trace", name);
                    prop_assert_eq!(trace.len(), d + 1, "{} non-minimal", name);
                }
                (expected, got) => {
                    return Err(TestCaseError::fail(format!(
                        "{name}: oracle {expected:?} vs engine {got}"
                    )));
                }
            }
        }
        if let Some(d) = oracle {
            let bmc = Bmc { max_depth: d + 1, ..Bmc::default() }.check(&net, &Budget::unlimited());
            prop_assert!(bmc.verdict.is_unsafe());
        }
    }
}
