//! # cbq-cnf — incremental Tseitin bridge between AIGs and the SAT solver
//!
//! The paper's SAT-merge routine is built "on top of ZChaff: we load the
//! clause database once and for-all, and we factorize several checks
//! together within a single ZChaff run". [`AigCnf`] reproduces exactly that
//! workflow:
//!
//! * AIG nodes are encoded to CNF **lazily** ([`AigCnf::ensure`]): each AND
//!   gate contributes its three Tseitin clauses the first time a check
//!   needs its cone, and never again;
//! * checks are issued as **assumption-based solves** on the shared
//!   database ([`AigCnf::solve_under`]), so nothing needs to be retracted
//!   between checks and everything the solver learns is kept;
//! * equivalence and implication proofs ([`AigCnf::prove_equiv`],
//!   [`AigCnf::prove_implies`]) return concrete counterexample input
//!   assignments that the sweeping engines feed back into simulation.
//!
//! ## Example
//!
//! ```
//! use cbq_aig::Aig;
//! use cbq_cnf::{AigCnf, EquivResult};
//!
//! let mut aig = Aig::new();
//! let a = aig.add_input().lit();
//! let b = aig.add_input().lit();
//! let f = aig.xor(a, b);
//! let or = aig.or(a, b);
//! let nand = !aig.and(a, b);
//! let g = aig.and(or, nand); // xor, written differently
//!
//! let mut cnf = AigCnf::new();
//! assert_eq!(cnf.prove_equiv(&aig, f, g, None), EquivResult::Equiv);
//! match cnf.prove_equiv(&aig, f, or, None) {
//!     EquivResult::NotEquiv(cex) => {
//!         assert_ne!(aig.eval(f, &cex), aig.eval(or, &cex));
//!     }
//!     other => panic!("expected counterexample, got {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cbq_aig::{Aig, Lit, Node, Var};
use cbq_sat::{SatLit, SatResult, SatVar, Solver};

/// Outcome of an equivalence or implication proof.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EquivResult {
    /// The two functions are equivalent (or the implication holds).
    Equiv,
    /// A distinguishing input assignment, indexed by input ordinal.
    NotEquiv(Vec<bool>),
    /// The conflict budget ran out before a verdict.
    Unknown,
}

impl EquivResult {
    /// Whether the proof succeeded.
    pub fn is_equiv(&self) -> bool {
        matches!(self, EquivResult::Equiv)
    }
}

/// Counters for the bridge, exposed by [`AigCnf::stats`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct AigCnfStats {
    /// AND gates encoded into CNF so far.
    pub encoded_ands: u64,
    /// Assumption-based solver calls issued.
    pub checks: u64,
}

/// An incremental AIG-to-CNF bridge over one persistent [`Solver`].
///
/// The bridge is tied to a single growing [`Aig`]: because the manager is
/// append-only and nodes are immutable, the mapping from AIG variables to
/// SAT variables never invalidates.
#[derive(Debug, Default)]
pub struct AigCnf {
    solver: Solver,
    map: Vec<Option<SatVar>>,
    stats: AigCnfStats,
}

impl AigCnf {
    /// Creates an empty bridge.
    pub fn new() -> AigCnf {
        AigCnf::default()
    }

    /// Read access to the underlying solver (e.g. for statistics).
    pub fn solver(&self) -> &Solver {
        &self.solver
    }

    /// Mutable access to the underlying solver, for advanced uses such as
    /// adding blocking clauses during all-solutions enumeration.
    pub fn solver_mut(&mut self) -> &mut Solver {
        &mut self.solver
    }

    /// Bridge statistics.
    pub fn stats(&self) -> AigCnfStats {
        self.stats
    }

    /// Sets the conflict budget for subsequent checks (`None` = unlimited).
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.solver.set_conflict_budget(budget);
    }

    fn var_for(&mut self, v: Var) -> SatVar {
        if self.map.len() <= v.index() {
            self.map.resize(v.index() + 1, None);
        }
        match self.map[v.index()] {
            Some(sv) => sv,
            None => {
                let sv = self.solver.new_var();
                self.map[v.index()] = Some(sv);
                sv
            }
        }
    }

    /// Returns the SAT literal already associated with `l`, if its node has
    /// been encoded.
    pub fn sat_lit(&self, l: Lit) -> Option<SatLit> {
        self.map
            .get(l.var().index())
            .copied()
            .flatten()
            .map(|sv| sv.lit(!l.is_complemented()))
    }

    /// Encodes the cone of `l` (lazily — already-encoded nodes are skipped)
    /// and returns the SAT literal for `l`.
    pub fn ensure(&mut self, aig: &Aig, l: Lit) -> SatLit {
        for v in aig.collect_cone(&[l]) {
            if self.map.get(v.index()).copied().flatten().is_some() {
                continue;
            }
            match aig.node(v) {
                Node::Const => {
                    let sv = self.var_for(v);
                    self.solver.add_clause(&[sv.neg()]);
                }
                Node::Input { .. } => {
                    let _ = self.var_for(v);
                }
                Node::And { f0, f1 } => {
                    let a = self
                        .sat_lit(f0)
                        .expect("fanin encoded before gate (topological order)");
                    let b = self
                        .sat_lit(f1)
                        .expect("fanin encoded before gate (topological order)");
                    let c = self.var_for(v).pos();
                    // c <-> a & b
                    self.solver.add_clause(&[!c, a]);
                    self.solver.add_clause(&[!c, b]);
                    self.solver.add_clause(&[c, !a, !b]);
                    self.stats.encoded_ands += 1;
                }
            }
        }
        self.sat_lit(l).expect("root encoded")
    }

    /// Solves the shared database under the conjunction of `lits`
    /// (each encoded on demand, then assumed).
    pub fn solve_under(&mut self, aig: &Aig, lits: &[Lit]) -> SatResult {
        let mut assumptions = Vec::with_capacity(lits.len());
        for &l in lits {
            if l == Lit::FALSE {
                return SatResult::Unsat;
            }
            if l == Lit::TRUE {
                continue;
            }
            assumptions.push(self.ensure(aig, l));
        }
        self.stats.checks += 1;
        self.solver.solve_with(&assumptions)
    }

    /// Permanently asserts `l` (adds it as a unit clause).
    ///
    /// Used by engines that constrain the whole enumeration, e.g. blocking
    /// already-covered state cubes.
    pub fn assert_lit(&mut self, aig: &Aig, l: Lit) -> bool {
        if l == Lit::TRUE {
            return true;
        }
        if l == Lit::FALSE {
            return self.solver.add_clause(&[]);
        }
        let sl = self.ensure(aig, l);
        self.solver.add_clause(&[sl])
    }

    /// Extracts the model's values for every AIG input (unconstrained
    /// inputs default to `false`).
    ///
    /// Only meaningful immediately after a [`SatResult::Sat`] answer.
    pub fn model_inputs(&self, aig: &Aig) -> Vec<bool> {
        aig.inputs()
            .iter()
            .map(|v| {
                self.map
                    .get(v.index())
                    .copied()
                    .flatten()
                    .and_then(|sv| self.solver.value(sv))
                    .unwrap_or(false)
            })
            .collect()
    }

    /// Proves `a ≡ b` on the shared database, or produces a distinguishing
    /// input assignment.
    ///
    /// Issues (at most) two assumption-based solves — `a ∧ ¬b` and
    /// `¬a ∧ b` — so no clause is ever added or retracted for the check
    /// itself; the database stays clean for the next check.
    pub fn prove_equiv(&mut self, aig: &Aig, a: Lit, b: Lit, budget: Option<u64>) -> EquivResult {
        if a == b {
            return EquivResult::Equiv;
        }
        self.solver.set_conflict_budget(budget);
        let r = self.check_diff(aig, a, b);
        self.solver.set_conflict_budget(None);
        r
    }

    fn check_diff(&mut self, aig: &Aig, a: Lit, b: Lit) -> EquivResult {
        match self.solve_under(aig, &[a, !b]) {
            SatResult::Sat => return EquivResult::NotEquiv(self.model_inputs(aig)),
            SatResult::Unknown => return EquivResult::Unknown,
            SatResult::Unsat => {}
        }
        match self.solve_under(aig, &[!a, b]) {
            SatResult::Sat => EquivResult::NotEquiv(self.model_inputs(aig)),
            SatResult::Unknown => EquivResult::Unknown,
            SatResult::Unsat => EquivResult::Equiv,
        }
    }

    /// Proves `a → b`, or produces an input assignment with `a ∧ ¬b`.
    pub fn prove_implies(&mut self, aig: &Aig, a: Lit, b: Lit, budget: Option<u64>) -> EquivResult {
        self.solver.set_conflict_budget(budget);
        let r = match self.solve_under(aig, &[a, !b]) {
            SatResult::Sat => EquivResult::NotEquiv(self.model_inputs(aig)),
            SatResult::Unknown => EquivResult::Unknown,
            SatResult::Unsat => EquivResult::Equiv,
        };
        self.solver.set_conflict_budget(None);
        r
    }

    /// Checks whether `l` is constant `value` over all inputs.
    pub fn prove_constant(
        &mut self,
        aig: &Aig,
        l: Lit,
        value: bool,
        budget: Option<u64>,
    ) -> EquivResult {
        let target = if value { Lit::TRUE } else { Lit::FALSE };
        if l == target {
            return EquivResult::Equiv;
        }
        self.solver.set_conflict_budget(budget);
        let probe = if value { !l } else { l };
        let r = match self.solve_under(aig, &[probe]) {
            SatResult::Sat => EquivResult::NotEquiv(self.model_inputs(aig)),
            SatResult::Unknown => EquivResult::Unknown,
            SatResult::Unsat => EquivResult::Equiv,
        };
        self.solver.set_conflict_budget(None);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Aig, Vec<Lit>) {
        let mut aig = Aig::new();
        let ins = (0..4).map(|_| aig.add_input().lit()).collect();
        (aig, ins)
    }

    #[test]
    fn tautology_and_contradiction() {
        let (mut aig, ins) = setup();
        let t = aig.or(ins[0], !ins[0]);
        assert_eq!(t, Lit::TRUE);
        let mut cnf = AigCnf::new();
        assert_eq!(cnf.solve_under(&aig, &[Lit::TRUE]), SatResult::Sat);
        assert_eq!(cnf.solve_under(&aig, &[Lit::FALSE]), SatResult::Unsat);
    }

    #[test]
    fn simple_sat_with_model() {
        let (mut aig, ins) = setup();
        let f = aig.and(ins[0], !ins[1]);
        let mut cnf = AigCnf::new();
        assert_eq!(cnf.solve_under(&aig, &[f]), SatResult::Sat);
        let m = cnf.model_inputs(&aig);
        assert!(aig.eval(f, &m));
    }

    #[test]
    fn equivalence_of_demorgan() {
        let (mut aig, ins) = setup();
        let lhs = !aig.and(ins[0], ins[1]);
        let na = !ins[0];
        let nb = !ins[1];
        let rhs = aig.or(na, nb);
        let mut cnf = AigCnf::new();
        assert_eq!(cnf.prove_equiv(&aig, lhs, rhs, None), EquivResult::Equiv);
    }

    #[test]
    fn counterexample_is_concrete() {
        let (mut aig, ins) = setup();
        let f = aig.and(ins[0], ins[1]);
        let g = aig.or(ins[0], ins[1]);
        let mut cnf = AigCnf::new();
        match cnf.prove_equiv(&aig, f, g, None) {
            EquivResult::NotEquiv(cex) => {
                assert_ne!(aig.eval(f, &cex), aig.eval(g, &cex));
            }
            other => panic!("expected NotEquiv, got {other:?}"),
        }
    }

    #[test]
    fn implication_and_constant() {
        let (mut aig, ins) = setup();
        let f = aig.and(ins[0], ins[1]);
        let mut cnf = AigCnf::new();
        assert_eq!(cnf.prove_implies(&aig, f, ins[0], None), EquivResult::Equiv);
        assert!(!cnf.prove_implies(&aig, ins[0], f, None).is_equiv());
        let t = aig.or(ins[2], !ins[2]);
        assert_eq!(cnf.prove_constant(&aig, t, true, None), EquivResult::Equiv);
        assert!(!cnf.prove_constant(&aig, ins[3], true, None).is_equiv());
    }

    #[test]
    fn database_is_shared_across_checks() {
        let (mut aig, ins) = setup();
        let f = aig.and(ins[0], ins[1]);
        let mut cnf = AigCnf::new();
        let _ = cnf.prove_equiv(&aig, f, ins[0], None);
        let encoded_before = cnf.stats().encoded_ands;
        assert!(encoded_before > 0);
        // Same cone again: nothing new must be encoded.
        let _ = cnf.prove_implies(&aig, f, ins[1], None);
        let _ = cnf.prove_equiv(&aig, f, ins[1], None);
        assert_eq!(cnf.stats().encoded_ands, encoded_before);
        assert!(cnf.stats().checks >= 3);
    }

    #[test]
    fn assert_lit_constrains_future_checks() {
        let (aig, ins) = setup();
        let mut cnf = AigCnf::new();
        assert!(cnf.assert_lit(&aig, ins[0]));
        assert_eq!(cnf.solve_under(&aig, &[!ins[0]]), SatResult::Unsat);
        assert_eq!(cnf.solve_under(&aig, &[ins[1]]), SatResult::Sat);
    }

    #[test]
    fn budget_propagates_to_unknown() {
        // Build a moderately hard miter and give it one conflict.
        let mut aig = Aig::new();
        let xs: Vec<Lit> = (0..12).map(|_| aig.add_input().lit()).collect();
        let mut parity = Lit::FALSE;
        for &x in &xs {
            parity = aig.xor(parity, x);
        }
        let mut parity_rev = Lit::FALSE;
        for &x in xs.iter().rev() {
            parity_rev = aig.xor(parity_rev, x);
        }
        let mut cnf = AigCnf::new();
        let r = cnf.prove_equiv(&aig, parity, !parity_rev, Some(1));
        // Either it finds a cex within one conflict or gives up; never Equiv.
        assert!(matches!(r, EquivResult::Unknown | EquivResult::NotEquiv(_)));
    }
}
