//! The paper's traversal routine: backward reachability with AIG state
//! sets and circuit-based quantification (Section 3).

use cbq_aig::{Aig, Lit, Var};
use cbq_ckt::{Network, Trace};
use cbq_cnf::AigCnf;
use cbq_core::{exists_many, QuantConfig};
use cbq_sat::SatResult;

use crate::engine::{Budget, Engine, Meter};
use crate::ganai::all_solutions_exists;
use crate::sweep::{StateSetSweeper, SweepConfig as StateSweepConfig, SweepStats};
use crate::verdict::{McRun, McStats, Verdict};

/// How to finish quantification when partial quantification aborts some
/// input variables (Section 4: "it accepts effective quantification and
/// aborts the expensive ones").
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ResidualPolicy {
    /// Fall back to the naive cofactor disjunction (always completes, may
    /// grow the circuit).
    Naive,
    /// Hand the residual variables to all-solutions SAT enumeration with
    /// circuit cofactoring (the paper's proposed combination with [2]),
    /// bounded by this many enumeration rounds (falls back to naive if
    /// exhausted).
    Enumerate {
        /// Maximum enumeration rounds per quantification.
        max_rounds: usize,
    },
}

/// Backward-reachability model checker over AIG state sets — the paper's
/// engine.
///
/// "Given an invariant property P we start reachability from its
/// complement and we terminate as soon as no newly reached states are
/// found (fix-point) or we intersect the initial state set, delivering a
/// counter-example. In our implementation all state sets are represented
/// and manipulated using AIGs instead of BDDs. Operations on AIGs, e.g.,
/// equivalence, are performed using a SAT engine."
///
/// Between iterations the engine optionally runs the SAT-sweeping
/// state-set compaction of [`crate::sweep`], which fraigs and
/// garbage-collects the frontier/reached cones once the working manager
/// outgrows its watermark.
#[derive(Clone, Debug)]
pub struct CircuitUmc {
    /// Quantification engine configuration (merge/optimise/budget).
    pub quant: QuantConfig,
    /// What to do with variables partial quantification aborts.
    pub residual: ResidualPolicy,
    /// Between-iterations state-set sweeping; `None` disables it.
    pub sweep: Option<StateSweepConfig>,
    /// Iteration bound (a safety net; reaching it yields `Unknown`).
    pub max_iterations: usize,
}

impl Default for CircuitUmc {
    fn default() -> CircuitUmc {
        CircuitUmc {
            quant: QuantConfig::full(),
            residual: ResidualPolicy::Naive,
            sweep: Some(StateSweepConfig::default()),
            max_iterations: 10_000,
        }
    }
}

/// Statistics of a [`CircuitUmc`] run.
#[derive(Clone, Debug, Default)]
pub struct CircuitUmcStats {
    /// Backward iterations executed.
    pub iterations: usize,
    /// AND-gate count of each frontier after quantification (and, when
    /// sweeping is enabled, after the iteration's sweep).
    pub frontier_sizes: Vec<usize>,
    /// AND-gate count of the final reached-set representation.
    pub reached_size: usize,
    /// Peak node count of the working AIG (with sweeping, garbage
    /// collection makes this a true peak rather than a monotone total).
    pub peak_nodes: usize,
    /// Assumption-based SAT checks issued (all purposes, including checks
    /// on clause databases retired by sweeping).
    pub sat_checks: u64,
    /// Input variables aborted by partial quantification, total.
    pub quant_aborts: usize,
    /// Cofactors enumerated by the residual policy, total.
    pub ganai_cofactors: usize,
    /// State-set sweeping counters.
    pub sweep: SweepStats,
}

/// The remappable working state of one backward traversal: every literal
/// and input variable that must survive a state-set sweep lives here, so
/// the sweeper can rewrite them in one place.
struct Traversal {
    aig: Aig,
    cnf: AigCnf,
    pis: Vec<Var>,
    latches: Vec<Var>,
    /// Next-state functions, in latch order.
    deltas: Vec<Lit>,
    bad: Lit,
    init: Lit,
    reached: Lit,
    frontier: Lit,
    /// Every frontier in discovery order (needed for trace extraction).
    frontiers: Vec<Lit>,
}

impl Traversal {
    fn new(net: &Network) -> Traversal {
        let mut aig = net.aig().clone();
        let init = net.initial_cube().to_lit(&mut aig);
        Traversal {
            aig,
            cnf: AigCnf::new(),
            pis: net.primary_inputs().to_vec(),
            latches: net.latch_vars(),
            deltas: net.latches().iter().map(|l| l.next).collect(),
            bad: net.bad(),
            init,
            reached: Lit::FALSE,
            frontier: Lit::FALSE,
            frontiers: Vec::new(),
        }
    }

    /// Current next-state definition pairs `(latch var, δ)`.
    fn defs(&self) -> Vec<(Var, Lit)> {
        self.latches
            .iter()
            .copied()
            .zip(self.deltas.iter().copied())
            .collect()
    }

    /// The raw pre-image of `target`: quantification by substitution of
    /// the next-state functions (Section 3 in-lining).
    fn preimage(&mut self, target: Lit) -> Lit {
        let defs = self.defs();
        self.aig.compose(target, &defs)
    }

    /// Hands every live literal and input variable to the sweeper.
    fn sweep(&mut self, sweeper: &mut StateSetSweeper) -> bool {
        let mut lits: Vec<&mut Lit> = vec![
            &mut self.bad,
            &mut self.init,
            &mut self.reached,
            &mut self.frontier,
        ];
        lits.extend(self.deltas.iter_mut());
        lits.extend(self.frontiers.iter_mut());
        let vars: Vec<&mut Var> = self.pis.iter_mut().chain(self.latches.iter_mut()).collect();
        sweeper.run_if_due(&mut self.aig, &mut self.cnf, lits, vars)
    }
}

/// Bundles the typed stats into the uniform run record.
fn finish(verdict: Verdict, stats: CircuitUmcStats, meter: &Meter) -> McRun {
    let common = McStats {
        engine: "circuit",
        iterations: stats.iterations,
        peak_nodes: stats.peak_nodes,
        sat_checks: stats.sat_checks,
        elapsed: meter.elapsed(),
    };
    McRun::new(verdict, common).with_detail(stats)
}

impl Engine for CircuitUmc {
    fn name(&self) -> &'static str {
        "circuit"
    }

    /// Runs backward reachability on `net` within `budget`.
    fn check(&self, net: &Network, budget: &Budget) -> McRun {
        let meter = Meter::start(budget);
        let mut stats = CircuitUmcStats::default();
        let verdict = self.traverse(net, &meter, &mut stats);
        finish(verdict, stats, &meter)
    }
}

impl CircuitUmc {
    fn traverse(&self, net: &Network, meter: &Meter, stats: &mut CircuitUmcStats) -> Verdict {
        let mut t = Traversal::new(net);
        let mut sweeper = self.sweep.clone().map(StateSetSweeper::new);
        stats.peak_nodes = t.aig.num_nodes();
        if let Some(bounded) = meter.exceeded(0, t.aig.num_nodes(), 0) {
            return self.seal(bounded, stats, &mut t, &sweeper);
        }

        // F₀ = ∃i. bad(s, i)
        let bad = t.bad;
        t.frontier = self.quantify(&mut t, bad, stats);
        t.frontiers.push(t.frontier);
        t.reached = t.frontier;
        stats.frontier_sizes.push(t.aig.cone_size(t.frontier));

        // Is the initial state already bad?
        if t.cnf.solve_under(&t.aig, &[t.frontier, t.init]) == SatResult::Sat {
            let trace = self.extract_trace(&mut t, net, 0);
            return self.seal(Verdict::Unsafe { trace }, stats, &mut t, &sweeper);
        }
        stats.peak_nodes = stats.peak_nodes.max(t.aig.num_nodes());
        if let Some(sw) = &mut sweeper {
            if t.sweep(sw) {
                *stats.frontier_sizes.last_mut().expect("F0 recorded") =
                    t.aig.cone_size(t.frontier);
            }
        }

        for iter in 1..=self.max_iterations {
            let spent = retired_checks(&sweeper) + t.cnf.stats().checks;
            if let Some(bounded) = meter.exceeded(iter - 1, t.aig.num_nodes(), spent) {
                return self.seal(bounded, stats, &mut t, &sweeper);
            }
            stats.iterations = iter;
            // Pre-image: in-line the next-state functions, then quantify
            // the primary inputs by circuit-based quantification.
            let pre_raw = t.preimage(t.frontier);
            let pre = self.quantify(&mut t, pre_raw, stats);
            // New states this iteration.
            let new = t.aig.and(pre, !t.reached);
            if t.cnf.solve_under(&t.aig, &[new]) == SatResult::Unsat {
                return self.seal(Verdict::Safe { iterations: iter }, stats, &mut t, &sweeper);
            }
            t.frontiers.push(new);
            stats.frontier_sizes.push(t.aig.cone_size(new));
            if t.cnf.solve_under(&t.aig, &[new, t.init]) == SatResult::Sat {
                let trace = self.extract_trace(&mut t, net, iter);
                return self.seal(Verdict::Unsafe { trace }, stats, &mut t, &sweeper);
            }
            t.reached = t.aig.or(t.reached, new);
            t.frontier = new;
            stats.peak_nodes = stats.peak_nodes.max(t.aig.num_nodes());
            if let Some(sw) = &mut sweeper {
                // Re-record the frontier post-sweep: the trajectory should
                // reflect what the next iteration actually costs.
                if t.sweep(sw) {
                    *stats.frontier_sizes.last_mut().expect("frontier recorded") =
                        t.aig.cone_size(t.frontier);
                }
            }
        }
        let verdict = Verdict::Unknown {
            reason: format!("iteration bound {} reached", self.max_iterations),
        };
        self.seal(verdict, stats, &mut t, &sweeper)
    }

    /// Final bookkeeping shared by every exit path.
    fn seal(
        &self,
        verdict: Verdict,
        stats: &mut CircuitUmcStats,
        t: &mut Traversal,
        sweeper: &Option<StateSetSweeper>,
    ) -> Verdict {
        stats.sat_checks = retired_checks(sweeper) + t.cnf.stats().checks;
        stats.reached_size = t.aig.cone_size(t.reached);
        stats.peak_nodes = stats.peak_nodes.max(t.aig.num_nodes());
        if let Some(sw) = sweeper {
            stats.sweep = sw.stats;
        }
        verdict
    }

    /// Quantifies the primary inputs out of `f`, honouring the partial
    /// quantification budget and the residual policy.
    fn quantify(&self, t: &mut Traversal, f: Lit, stats: &mut CircuitUmcStats) -> Lit {
        let q = exists_many(&mut t.aig, f, &t.pis, &mut t.cnf, &self.quant);
        if q.remaining.is_empty() {
            return q.lit;
        }
        stats.quant_aborts += q.remaining.len();
        match self.residual {
            ResidualPolicy::Naive => {
                let naive = QuantConfig::naive();
                exists_many(&mut t.aig, q.lit, &q.remaining, &mut t.cnf, &naive).lit
            }
            ResidualPolicy::Enumerate { max_rounds } => {
                match all_solutions_exists(&mut t.aig, q.lit, &q.remaining, &mut t.cnf, max_rounds)
                {
                    Some((lit, gstats)) => {
                        stats.ganai_cofactors += gstats.cofactors;
                        lit
                    }
                    None => {
                        let naive = QuantConfig::naive();
                        exists_many(&mut t.aig, q.lit, &q.remaining, &mut t.cnf, &naive).lit
                    }
                }
            }
        }
    }

    /// Walks a counterexample forward: from the initial state, at each
    /// level find an input leading into the next (closer-to-bad)
    /// frontier, finishing with an input that fires `bad` itself.
    fn extract_trace(&self, t: &mut Traversal, net: &Network, level: usize) -> Trace {
        let mut inputs_seq: Vec<Vec<bool>> = Vec::with_capacity(level + 1);
        let mut state = net.initial_state();
        for l in (0..level).rev() {
            let target = t.frontiers[l];
            let pre_raw = t.preimage(target);
            let cube = state_cube(&mut t.aig, &t.latches, &state);
            let r = t.cnf.solve_under(&t.aig, &[pre_raw, cube]);
            debug_assert_eq!(r, SatResult::Sat, "trace step must be satisfiable");
            let inputs = extract_pi_values(&t.aig, &t.pis, &t.cnf);
            let (next, _) = net.step(&state, &inputs);
            inputs_seq.push(inputs);
            state = next;
        }
        // Final step: fire bad from the current state.
        let cube = state_cube(&mut t.aig, &t.latches, &state);
        let r = t.cnf.solve_under(&t.aig, &[t.bad, cube]);
        debug_assert_eq!(r, SatResult::Sat, "bad must fire at trace end");
        inputs_seq.push(extract_pi_values(&t.aig, &t.pis, &t.cnf));
        Trace::new(inputs_seq)
    }
}

/// SAT checks spent on clause databases the sweeper already retired.
fn retired_checks(sweeper: &Option<StateSetSweeper>) -> u64 {
    sweeper.as_ref().map_or(0, |s| s.stats.retired_sat_checks)
}

/// The conjunction of latch literals pinning `state`.
fn state_cube(aig: &mut Aig, latches: &[Var], state: &[bool]) -> Lit {
    let lits: Vec<Lit> = latches
        .iter()
        .zip(state)
        .map(|(l, v)| l.lit().xor_sign(!v))
        .collect();
    aig.and_many(&lits)
}

/// Reads the primary-input values from the current SAT model.
fn extract_pi_values(aig: &Aig, pis: &[Var], cnf: &AigCnf) -> Vec<bool> {
    let model = cnf.model_inputs(aig);
    pis.iter()
        .map(|v| model[aig.input_index(*v).expect("PI is an input")])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::{check_safe, check_unsafe};
    use cbq_ckt::generators;

    #[test]
    fn safe_token_ring() {
        check_safe(&CircuitUmc::default(), &generators::token_ring(6));
    }

    #[test]
    fn safe_bounded_counter() {
        check_safe(&CircuitUmc::default(), &generators::bounded_counter(4, 9));
    }

    #[test]
    fn safe_gray_counter() {
        check_safe(&CircuitUmc::default(), &generators::gray_counter(4));
    }

    #[test]
    fn deep_backward_fixpoint_iteration_count() {
        // The gap circuit converges in exactly gap+1 backward iterations.
        let net = generators::bounded_counter_gap(4, 6, 12);
        let run = CircuitUmc::default().check(&net, &Budget::unlimited());
        match run.verdict {
            Verdict::Safe { iterations } => assert_eq!(iterations, 12 - 6 + 1),
            other => panic!("expected safe, got {other}"),
        }
    }

    #[test]
    fn safe_lfsr() {
        check_safe(&CircuitUmc::default(), &generators::lfsr(5, &[0, 2]));
    }

    #[test]
    fn safe_arbiter() {
        check_safe(&CircuitUmc::default(), &generators::arbiter(4));
    }

    #[test]
    fn safe_mutex() {
        check_safe(&CircuitUmc::default(), &generators::mutex());
    }

    #[test]
    fn unsafe_token_ring_bug() {
        check_unsafe(
            &CircuitUmc::default(),
            &generators::token_ring_bug(5),
            Some(3),
        );
    }

    #[test]
    fn unsafe_mutex_bug() {
        check_unsafe(&CircuitUmc::default(), &generators::mutex_bug(), Some(2));
    }

    #[test]
    fn unsafe_shift_ones() {
        check_unsafe(&CircuitUmc::default(), &generators::shift_ones(4), Some(4));
    }

    #[test]
    fn unsafe_counter_bug() {
        check_unsafe(
            &CircuitUmc::default(),
            &generators::counter_bug(4, 6),
            Some(6),
        );
    }

    #[test]
    fn residual_policies_agree() {
        let net = generators::shift_ones(5);
        let tight = CircuitUmc {
            quant: QuantConfig::full().with_budget(1.05),
            residual: ResidualPolicy::Enumerate { max_rounds: 128 },
            ..CircuitUmc::default()
        };
        let run = tight.check(&net, &Budget::unlimited());
        match run.verdict {
            Verdict::Unsafe { trace } => assert!(trace.validates(&net)),
            other => panic!("expected unsafe, got {other}"),
        }
        let naive = CircuitUmc {
            quant: QuantConfig::full().with_budget(1.05),
            residual: ResidualPolicy::Naive,
            ..CircuitUmc::default()
        };
        let run2 = naive.check(&net, &Budget::unlimited());
        assert!(run2.verdict.is_unsafe());
    }

    #[test]
    fn stats_are_populated() {
        let run = CircuitUmc::default().check(&generators::token_ring(4), &Budget::unlimited());
        assert!(run.stats.iterations >= 1);
        assert!(run.stats.sat_checks > 0);
        assert!(run.stats.peak_nodes > 0);
        let detail = run.detail::<CircuitUmcStats>().expect("typed stats");
        assert!(!detail.frontier_sizes.is_empty());
        assert_eq!(detail.iterations, run.stats.iterations);
    }

    #[test]
    fn step_budget_bounds_the_traversal() {
        // The gap circuit needs 7 backward iterations; 2 are not enough.
        let net = generators::bounded_counter_gap(4, 6, 12);
        let run = CircuitUmc::default().check(&net, &Budget::unlimited().with_steps(2));
        match run.verdict {
            Verdict::Bounded { resource, limit } => {
                assert_eq!(resource, crate::Resource::Steps);
                assert_eq!(limit, 2);
            }
            other => panic!("expected bounded, got {other}"),
        }
        assert!(run.stats.iterations <= 2);
    }

    /// Structural verdict comparison: concrete counterexample inputs may
    /// legitimately differ between runs (different SAT models), but the
    /// classification and the minimal depth must not.
    fn verdict_key(v: &Verdict) -> String {
        match v {
            Verdict::Safe { iterations } => format!("safe@{iterations}"),
            Verdict::Unsafe { trace } => format!("cex@{}", trace.len()),
            other => format!("{other}"),
        }
    }

    #[test]
    fn sweeping_and_plain_traversals_agree() {
        // Same verdicts with sweeping forced on every iteration, forced
        // off, and gc-less; the eager sweep must not grow the state sets.
        for net in [
            generators::token_ring(5),
            generators::bounded_counter_gap(4, 6, 12),
            generators::token_ring_bug(5),
            generators::counter_bug(4, 6),
        ] {
            let plain = CircuitUmc {
                sweep: None,
                ..CircuitUmc::default()
            };
            let eager = CircuitUmc {
                sweep: Some(StateSweepConfig::eager()),
                ..CircuitUmc::default()
            };
            let merge_only = CircuitUmc {
                sweep: Some(StateSweepConfig {
                    gc: false,
                    ..StateSweepConfig::eager()
                }),
                ..CircuitUmc::default()
            };
            let rp = plain.check(&net, &Budget::unlimited());
            let re = eager.check(&net, &Budget::unlimited());
            let rm = merge_only.check(&net, &Budget::unlimited());
            let key = verdict_key(&rp.verdict);
            assert_eq!(
                key,
                verdict_key(&re.verdict),
                "{}: sweep changed verdict",
                net.name()
            );
            assert_eq!(
                key,
                verdict_key(&rm.verdict),
                "{}: gc-less sweep changed verdict",
                net.name()
            );
            let de = re.detail::<CircuitUmcStats>().expect("stats");
            assert!(de.sweep.runs > 0, "{}: eager sweep never ran", net.name());
            let dp = rp.detail::<CircuitUmcStats>().expect("stats");
            assert!(
                de.reached_size <= dp.reached_size,
                "{}: sweeping grew the reached set",
                net.name()
            );
            if let Verdict::Unsafe { trace } = &re.verdict {
                assert!(trace.validates(&net), "{}: swept trace bogus", net.name());
            }
        }
    }
}
