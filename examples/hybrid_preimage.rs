//! The paper's Section 4 hybrid: partial circuit-based quantification as
//! a preprocessing step for all-solutions SAT pre-image with circuit
//! cofactoring (Ganai/Gupta/Ashar). Shows how pre-quantification shrinks
//! the SAT enumeration's decision-variable set and round count.
//!
//! Run with: `cargo run --example hybrid_preimage`

use cbq::ckt::generators;
use cbq::mc::ganai::{all_solutions_exists, hybrid_exists};
use cbq::mc::preimage::preimage_formula;
use cbq::prelude::*;

fn main() {
    let net = generators::arbiter(6);
    let mut aig = net.aig().clone();
    let mut cnf = AigCnf::new();

    // Target: the bad states; pre-image formula over (state, inputs).
    let pre_raw = preimage_formula(&mut aig, &net, net.bad());
    let pis: Vec<Var> = net.primary_inputs().to_vec();
    println!(
        "pre-image formula: {} AND gates, {} input variables to eliminate",
        aig.cone_size(pre_raw),
        pis.len()
    );

    // Pure SAT enumeration (no circuit quantification at all).
    let (pure, stats) =
        all_solutions_exists(&mut aig, pre_raw, &pis, &mut cnf, 10_000).expect("converges");
    println!(
        "pure enumeration   : {:>3} cofactor rounds, result {} gates",
        stats.cofactors,
        aig.cone_size(pure)
    );

    // Hybrid: quantify cheap inputs first (tight growth budget), then
    // enumerate only the residuals.
    let cfg = QuantConfig::full().with_budget(1.5);
    let (hybrid, hstats) =
        hybrid_exists(&mut aig, pre_raw, &pis, &mut cnf, &cfg, 10_000).expect("converges");
    println!(
        "hybrid             : {:>3} cofactor rounds over {} residuals ({} pre-quantified), result {} gates",
        hstats.cofactors,
        hstats.residual_vars,
        hstats.prequantified_vars,
        aig.cone_size(hybrid)
    );

    // Full circuit quantification, for reference.
    let full = cbq::quant::exists_many(&mut aig, pre_raw, &pis, &mut cnf, &QuantConfig::full());
    println!(
        "full circuit quant : result {} gates, {} vars aborted",
        aig.cone_size(full.lit),
        full.remaining.len()
    );

    // All three are the same state set.
    assert!(cnf.prove_equiv(&aig, pure, hybrid, None).is_equiv());
    assert!(cnf.prove_equiv(&aig, hybrid, full.lit, None).is_equiv());
    println!("\nall three pre-image state sets agree ✓");
}
