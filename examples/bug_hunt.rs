//! Hunt for bugs: run every registered engine on intentionally broken
//! circuits, validate each counterexample by concrete replay, and show
//! that all engines agree on the minimal counterexample depth.
//!
//! Run with: `cargo run --example bug_hunt`

use cbq::ckt::generators;
use cbq::mc::explicit;
use cbq::mc::registry;
use cbq::prelude::*;

fn main() {
    let nets = [
        generators::token_ring_bug(6),
        generators::mutex_bug(),
        generators::arbiter_bug(5),
        generators::shift_ones(5),
        generators::counter_bug(5, 11),
    ];
    for net in &nets {
        let oracle = explicit::shortest_cex_depth(net, 8, 1 << 16).expect("bug exists");
        println!("{}  (oracle: cex of {} steps)", net.name(), oracle + 1);
        for spec in registry() {
            let run = (spec.build)().check(net, &Budget::unlimited());
            let trace = run.verdict.trace().unwrap_or_else(|| {
                panic!(
                    "{}: engine {} missed the bug: {}",
                    net.name(),
                    spec.name,
                    run.verdict
                )
            });
            assert!(
                trace.validates(net),
                "{}: {} produced a bogus trace",
                net.name(),
                spec.name
            );
            if spec.minimal_cex {
                assert_eq!(
                    trace.len(),
                    oracle + 1,
                    "{}: {} counterexample is not minimal",
                    net.name(),
                    spec.name
                );
            }
            println!(
                "  {:<12} cex of {} steps  [{} iterations, {:.1} ms]",
                spec.name,
                trace.len(),
                run.stats.iterations,
                run.stats.elapsed.as_secs_f64() * 1e3
            );
        }
    }
    println!("\nevery engine found and validated a minimal counterexample ✓");
}
