//! Property-based differential tests of the activation-literal cone
//! lifetimes: a persistent [`AigCnf`] driven through add/solve/retire
//! cycles must answer exactly like a fresh bridge at every step, in both
//! lifetime modes, across manager compactions.

use proptest::prelude::*;

use cbq_aig::{Aig, Lit};
use cbq_cnf::{AigCnf, CnfLifetime, EquivResult};
use cbq_sat::SatResult;

/// A recipe for building a random combinational cone over `N` inputs.
#[derive(Clone, Debug)]
enum GateOp {
    And(usize, bool, usize, bool),
    Xor(usize, bool, usize, bool),
}

fn ops_strategy(max_ops: usize) -> impl Strategy<Value = Vec<GateOp>> {
    prop::collection::vec(
        prop_oneof![
            (any::<usize>(), any::<bool>(), any::<usize>(), any::<bool>())
                .prop_map(|(a, pa, b, pb)| GateOp::And(a, pa, b, pb)),
            (any::<usize>(), any::<bool>(), any::<usize>(), any::<bool>())
                .prop_map(|(a, pa, b, pb)| GateOp::Xor(a, pa, b, pb)),
        ],
        2..=max_ops,
    )
}

const N: usize = 6;

/// Materialises a recipe; returns the AIG and the last three literals
/// built (the roots the workload checks and the GC keeps alive).
fn build(ops: &[GateOp]) -> (Aig, Vec<Lit>) {
    let mut aig = Aig::new();
    let mut pool: Vec<Lit> = (0..N).map(|_| aig.add_input().lit()).collect();
    for op in ops {
        let pick = |i: usize| pool[i % pool.len()];
        let l = match *op {
            GateOp::And(a, pa, b, pb) => {
                let x = pick(a).xor_sign(pa);
                let y = pick(b).xor_sign(pb);
                aig.and(x, y)
            }
            GateOp::Xor(a, pa, b, pb) => {
                let x = pick(a).xor_sign(pa);
                let y = pick(b).xor_sign(pb);
                aig.xor(x, y)
            }
        };
        pool.push(l);
    }
    let roots: Vec<Lit> = pool[pool.len().saturating_sub(3)..].to_vec();
    (aig, roots)
}

/// Exhaustive satisfiability of `root` over all 2^N input assignments.
fn oracle_sat(aig: &Aig, root: Lit) -> bool {
    (0..1u32 << N).any(|mask| {
        let asg: Vec<bool> = (0..N).map(|i| (mask >> i) & 1 != 0).collect();
        aig.eval(root, &asg)
    })
}

/// Exhaustive equivalence of two roots.
fn oracle_equiv(aig: &Aig, a: Lit, b: Lit) -> bool {
    (0..1u32 << N).all(|mask| {
        let asg: Vec<bool> = (0..N).map(|i| (mask >> i) & 1 != 0).collect();
        aig.eval(a, &asg) == aig.eval(b, &asg)
    })
}

/// How the bridge is carried across the per-round manager compaction.
#[derive(Copy, Clone, Debug, PartialEq)]
enum GcHandoff {
    /// `AigCnf::retire_cones` — the whole generation is disabled and the
    /// next round re-encodes.
    Retire,
    /// `AigCnf::migrate` — surviving cones keep their SAT variables (the
    /// sweep-GC path).
    Migrate,
}

/// Runs the workload rounds against one persistent bridge: every check is
/// compared to the exhaustive oracle, then the manager is compacted and
/// the bridge handed across (retired or migrated), and the next round
/// continues on the new manager.
fn drive(mut aig: Aig, mut roots: Vec<Lit>, lifetime: CnfLifetime, handoff: GcHandoff) {
    let rounds = 3;
    let mut cnf = AigCnf::with_lifetime(lifetime);
    for round in 0..rounds {
        for &r in &roots {
            let expect = oracle_sat(&aig, r);
            let got = cnf.solve_under(&aig, &[r]);
            assert_eq!(
                got.is_sat(),
                expect,
                "round {round} ({lifetime:?}): solve_under disagrees with the oracle on {r:?}"
            );
            if got == SatResult::Sat {
                let m = cnf.model_inputs(&aig);
                assert!(aig.eval(r, &m), "round {round}: model does not satisfy");
            }
        }
        for i in 0..roots.len() {
            for j in i + 1..roots.len() {
                let expect = oracle_equiv(&aig, roots[i], roots[j]);
                match cnf.prove_equiv(&aig, roots[i], roots[j], None) {
                    EquivResult::Equiv => assert!(expect, "round {round}: bogus Equiv"),
                    EquivResult::NotEquiv(cex) => {
                        assert!(!expect, "round {round}: bogus NotEquiv");
                        assert_ne!(
                            aig.eval(roots[i], &cex),
                            aig.eval(roots[j], &cex),
                            "round {round}: counterexample does not distinguish"
                        );
                    }
                    EquivResult::Unknown => panic!("no budget was set"),
                }
            }
        }
        // The engines' sweep-GC step: compact the manager around the live
        // roots and hand the bridge across.
        let (packed, packed_roots, var_map) = aig.compact_with_map(&roots);
        match handoff {
            GcHandoff::Retire => {
                cnf.retire_cones();
                assert_eq!(cnf.stats().retirements as usize, round + 1);
            }
            GcHandoff::Migrate => {
                cnf.migrate(&var_map, packed.num_nodes());
                assert_eq!(
                    (cnf.stats().migrations + cnf.stats().retirements) as usize,
                    round + 1
                );
            }
        }
        aig = packed;
        roots = packed_roots;
    }
    if lifetime == CnfLifetime::Rebuild {
        assert_eq!(cnf.stats().learnts_retained, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Activation-mode add/retire cycles agree with the exhaustive oracle
    /// at every round (the persistent solver never contaminates a later
    /// generation) and models/counterexamples stay concrete.
    #[test]
    fn activation_retire_cycles_agree_with_oracle(ops in ops_strategy(20)) {
        let (aig, roots) = build(&ops);
        drive(aig, roots, CnfLifetime::Activation, GcHandoff::Retire);
    }

    /// The sweep-GC path: add/solve/*migrate* cycles — surviving cones
    /// keep their SAT variables (strash-collision losers, constant
    /// mappings, and orphan purging included) and every post-migration
    /// answer still matches the exhaustive oracle.
    #[test]
    fn activation_migrate_cycles_agree_with_oracle(ops in ops_strategy(20)) {
        let (aig, roots) = build(&ops);
        drive(aig, roots, CnfLifetime::Activation, GcHandoff::Migrate);
    }

    /// The rebuild ablation mode answers identically (it is the old
    /// fresh-bridge-after-GC behaviour), whichever hand-off the sweep
    /// asks for.
    #[test]
    fn rebuild_cycles_agree_with_oracle(ops in ops_strategy(20)) {
        let (aig, roots) = build(&ops);
        drive(aig.clone(), roots.clone(), CnfLifetime::Rebuild, GcHandoff::Retire);
        drive(aig, roots, CnfLifetime::Rebuild, GcHandoff::Migrate);
    }

    /// Interleaved generation checks: queries answered *after* a retire
    /// must not be influenced by constraints asserted *before* it.
    #[test]
    fn assertions_die_with_their_generation(ops in ops_strategy(16)) {
        let (aig, roots) = build(&ops);
        let root = roots[0];
        // Constrain generation 0 to `root` (only meaningful when `root`
        // is satisfiable — otherwise the recipe is skipped).
        if oracle_sat(&aig, root) {
            let mut cnf = AigCnf::new();
            assert!(cnf.assert_lit(&aig, root));
            assert_eq!(cnf.solve_under(&aig, &[!root]), SatResult::Unsat);
            cnf.retire_cones();
            // Generation 1: the negation must be decidable purely by the
            // oracle again.
            let expect_neg = oracle_sat(&aig, !root);
            assert_eq!(cnf.solve_under(&aig, &[!root]).is_sat(), expect_neg);
        }
    }
}
