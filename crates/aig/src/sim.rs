//! 64-way parallel bit-vector simulation — two-valued ([`BitSim`]) and
//! ternary ([`TernSim`]).
//!
//! Because the manager is append-only, node indices are a topological
//! order: whole-graph simulation is a single linear pass. Sweeping engines
//! use the resulting per-node *signatures* to seed candidate equivalence
//! classes, and feed SAT counterexamples back in as fresh patterns to
//! refine them. The ternary simulator adds an X value for "unknown": IC3
//! uses it to widen a concrete predecessor state into a cube by checking
//! which latches can go to X while the bad/next-state cone stays at a
//! definite value — structural reasoning that replaces SAT queries.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::aig::Aig;
use crate::lit::{Lit, Var};
use crate::node::Node;

/// A parallel simulator holding `words * 64` patterns for every node.
///
/// ```
/// use cbq_aig::{Aig, sim::BitSim};
/// let mut aig = Aig::new();
/// let a = aig.add_input().lit();
/// let b = aig.add_input().lit();
/// let f = aig.and(a, b);
/// let mut sim = BitSim::new(&aig, 1);
/// sim.set_input_word(&aig, 0, 0, 0b1100);
/// sim.set_input_word(&aig, 1, 0, 0b1010);
/// sim.run(&aig);
/// assert_eq!(sim.lit_word(f, 0) & 0b1111, 0b1000);
/// ```
#[derive(Clone, Debug)]
pub struct BitSim {
    words: usize,
    vals: Vec<u64>,
}

impl BitSim {
    /// Creates a simulator with `words` 64-bit pattern words per node, all
    /// zero.
    pub fn new(aig: &Aig, words: usize) -> BitSim {
        assert!(words > 0, "need at least one simulation word");
        BitSim {
            words,
            vals: vec![0; aig.num_nodes() * words],
        }
    }

    /// Creates a simulator with uniformly random input patterns and runs it.
    pub fn random(aig: &Aig, words: usize, seed: u64) -> BitSim {
        let mut sim = BitSim::new(aig, words);
        sim.randomize_inputs(aig, seed);
        sim.run(aig);
        sim
    }

    /// Number of 64-bit words per node.
    pub fn words(&self) -> usize {
        self.words
    }

    /// Total number of patterns (`words * 64`).
    pub fn num_patterns(&self) -> usize {
        self.words * 64
    }

    /// Fills every input with fresh random patterns (deterministic in
    /// `seed`).
    pub fn randomize_inputs(&mut self, aig: &Aig, seed: u64) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for v in aig.inputs() {
            for w in 0..self.words {
                let word: u64 = rng.gen();
                self.vals[v.index() * self.words + w] = word;
            }
        }
    }

    /// Sets one pattern word of input number `input_index`.
    ///
    /// # Panics
    ///
    /// Panics if the input or word index is out of range.
    pub fn set_input_word(&mut self, aig: &Aig, input_index: usize, word: usize, value: u64) {
        let v = aig.input_var(input_index);
        assert!(word < self.words);
        self.vals[v.index() * self.words + word] = value;
    }

    /// Injects a single concrete input assignment into pattern bit
    /// `bit` (counted across all words), leaving other patterns untouched.
    ///
    /// Used to replay SAT counterexamples so a future [`BitSim::run`] will
    /// distinguish nodes the counterexample separates.
    pub fn set_pattern(&mut self, aig: &Aig, bit: usize, assignment: &[bool]) {
        assert!(bit < self.num_patterns());
        let (word, off) = (bit / 64, bit % 64);
        for (i, v) in aig.inputs().iter().enumerate() {
            let idx = v.index() * self.words + word;
            let mask = 1u64 << off;
            if assignment.get(i).copied().unwrap_or(false) {
                self.vals[idx] |= mask;
            } else {
                self.vals[idx] &= !mask;
            }
        }
    }

    /// Re-evaluates every AND gate from the current input patterns.
    ///
    /// Grows internal storage if the AIG gained nodes since construction.
    pub fn run(&mut self, aig: &Aig) {
        self.vals.resize(aig.num_nodes() * self.words, 0);
        for (idx, node) in aig.nodes().iter().enumerate() {
            if let Node::And { f0, f1 } = *node {
                for w in 0..self.words {
                    let a = self.edge_word(f0, w);
                    let b = self.edge_word(f1, w);
                    self.vals[idx * self.words + w] = a & b;
                }
            }
        }
    }

    fn edge_word(&self, l: Lit, w: usize) -> u64 {
        let raw = self.vals[l.var().index() * self.words + w];
        if l.is_complemented() {
            !raw
        } else {
            raw
        }
    }

    /// The pattern word `w` of literal `l` (complement applied).
    pub fn lit_word(&self, l: Lit, w: usize) -> u64 {
        self.edge_word(l, w)
    }

    /// The full signature of a literal as an owned vector of words.
    pub fn signature(&self, l: Lit) -> Vec<u64> {
        (0..self.words).map(|w| self.edge_word(l, w)).collect()
    }

    /// A phase-normalised signature: the signature of `l` or of `!l`,
    /// whichever has bit 0 clear, together with the flag saying whether it
    /// was complemented. Nodes that are equivalent *modulo complementation*
    /// normalise to equal keys.
    pub fn normalized_signature(&self, l: Lit) -> (Vec<u64>, bool) {
        let flip = self.edge_word(l, 0) & 1 != 0;
        (self.signature(l.xor_sign(flip)), flip)
    }

    /// True iff the signatures of `a` and `b` are identical.
    pub fn same_signature(&self, a: Lit, b: Lit) -> bool {
        (0..self.words).all(|w| self.edge_word(a, w) == self.edge_word(b, w))
    }

    /// Whether any simulated pattern distinguishes `a` from `b`; if so,
    /// returns the bit index of one such pattern.
    pub fn distinguishing_pattern(&self, a: Lit, b: Lit) -> Option<usize> {
        for w in 0..self.words {
            let diff = self.edge_word(a, w) ^ self.edge_word(b, w);
            if diff != 0 {
                return Some(w * 64 + diff.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Extracts the concrete input assignment of pattern bit `bit`.
    pub fn pattern_assignment(&self, aig: &Aig, bit: usize) -> Vec<bool> {
        let (word, off) = (bit / 64, bit % 64);
        aig.inputs()
            .iter()
            .map(|v| (self.vals[v.index() * self.words + word] >> off) & 1 != 0)
            .collect()
    }

    /// Value of variable `v` in pattern bit `bit` (no complement).
    pub fn var_bit(&self, v: Var, bit: usize) -> bool {
        let (word, off) = (bit / 64, bit % 64);
        (self.vals[v.index() * self.words + word] >> off) & 1 != 0
    }
}

/// A ternary (0/1/X) bit-parallel simulator holding `words * 64`
/// three-valued patterns for every node.
///
/// The encoding is two planes per node: `ones` (bits where the node is
/// *definitely 1*) and `zeros` (*definitely 0*); a bit clear in both
/// planes is X. The planes make X-propagation two word operations per
/// gate — `AND`: `ones = a.ones & b.ones`, `zeros = a.zeros | b.zeros`
/// — and `NOT` a plane swap at the edge read, mirroring [`BitSim`]'s
/// complement handling. Ternary evaluation is *monotone in definedness*:
/// turning more inputs to X can only turn more outputs to X, never flip
/// a definite value — which is what makes a definite output a sound fact
/// about every concretization of the X inputs.
///
/// ```
/// use cbq_aig::{Aig, sim::TernSim};
/// let mut aig = Aig::new();
/// let a = aig.add_input();
/// let b = aig.add_input();
/// let f = aig.and(a.lit(), b.lit());
/// let mut sim = TernSim::new(&aig, 1);
/// sim.set_var(a, 0, Some(false));
/// sim.set_var(b, 0, None); // X
/// sim.run(&aig);
/// // 0 AND X is definitely 0; the X never reaches f.
/// assert_eq!(sim.lit_value(f, 0), Some(false));
/// sim.set_var(a, 0, Some(true));
/// sim.run(&aig);
/// // 1 AND X stays X.
/// assert_eq!(sim.lit_value(f, 0), None);
/// ```
#[derive(Clone, Debug)]
pub struct TernSim {
    words: usize,
    /// Definitely-1 plane, indexed `node * words + w`.
    ones: Vec<u64>,
    /// Definitely-0 plane, same indexing.
    zeros: Vec<u64>,
    /// Generation-stamped visit plane for cone walks (the manager's
    /// compose-scratchpad scheme): a node is marked iff its stamp equals
    /// the current generation, so "clearing" between walks is a counter
    /// bump and repeated [`TernSim::cone_of_reused`] calls allocate
    /// nothing.
    visit: Vec<u32>,
    visit_gen: u32,
    /// Reusable DFS stack for the same walks.
    walk_stack: Vec<u32>,
}

impl TernSim {
    /// Creates a simulator with `words` 64-bit pattern words per node.
    /// Every variable starts at X; the constant node is definitely 0.
    pub fn new(aig: &Aig, words: usize) -> TernSim {
        assert!(words > 0, "need at least one simulation word");
        let mut sim = TernSim {
            words,
            ones: vec![0; aig.num_nodes() * words],
            zeros: vec![0; aig.num_nodes() * words],
            visit: Vec::new(),
            visit_gen: 0,
            walk_stack: Vec::new(),
        };
        for w in 0..words {
            sim.zeros[w] = !0;
        }
        sim
    }

    /// Number of 64-bit words per node.
    pub fn words(&self) -> usize {
        self.words
    }

    /// Total number of patterns (`words * 64`).
    pub fn num_patterns(&self) -> usize {
        self.words * 64
    }

    /// Sets variable `v` in pattern `bit` to a definite value or to X
    /// (`None`). Meaningful for input variables; an AND node's planes are
    /// recomputed by the next run.
    pub fn set_var(&mut self, v: Var, bit: usize, val: Option<bool>) {
        assert!(bit < self.num_patterns());
        let idx = v.index() * self.words + bit / 64;
        let mask = 1u64 << (bit % 64);
        self.ones[idx] &= !mask;
        self.zeros[idx] &= !mask;
        match val {
            Some(true) => self.ones[idx] |= mask,
            Some(false) => self.zeros[idx] |= mask,
            None => {}
        }
    }

    /// Sets variable `v` to the same value (or X) in every pattern.
    pub fn broadcast_var(&mut self, v: Var, val: Option<bool>) {
        let base = v.index() * self.words;
        let (ones, zeros) = match val {
            Some(true) => (!0u64, 0),
            Some(false) => (0, !0u64),
            None => (0, 0),
        };
        for w in 0..self.words {
            self.ones[base + w] = ones;
            self.zeros[base + w] = zeros;
        }
    }

    /// Re-evaluates every AND gate from the current input planes.
    ///
    /// Grows internal storage (new nodes start at X) if the AIG gained
    /// nodes since construction.
    pub fn run(&mut self, aig: &Aig) {
        self.ones.resize(aig.num_nodes() * self.words, 0);
        self.zeros.resize(aig.num_nodes() * self.words, 0);
        for (idx, node) in aig.nodes().iter().enumerate() {
            if let Node::And { f0, f1 } = *node {
                self.eval_and(idx, f0, f1);
            }
        }
    }

    /// The AND-gate cone of `roots`: every AND node some root depends
    /// on, as ascending node indices — a valid evaluation order for
    /// [`TernSim::run_cone`] (append-only node indices are topological).
    pub fn cone_of(aig: &Aig, roots: &[Lit]) -> Vec<usize> {
        let mut seen = vec![false; aig.num_nodes()];
        let mut stack: Vec<usize> = Vec::new();
        for root in roots {
            let idx = root.var().index();
            if !seen[idx] {
                seen[idx] = true;
                stack.push(idx);
            }
        }
        let mut cone = Vec::new();
        while let Some(idx) = stack.pop() {
            if let Node::And { f0, f1 } = aig.nodes()[idx] {
                cone.push(idx);
                for edge in [f0, f1] {
                    let child = edge.var().index();
                    if !seen[child] {
                        seen[child] = true;
                        stack.push(child);
                    }
                }
            }
        }
        cone.sort_unstable();
        cone
    }

    /// [`TernSim::cone_of`] into a caller-owned buffer, visiting through
    /// the simulator's generation-stamped plane: no allocation at all
    /// once the buffers have grown. The IC3 widening loop computes one
    /// cone per blocked predecessor, so the per-call `seen` vector of the
    /// associated-function form was pure churn there.
    pub fn cone_of_reused(&mut self, aig: &Aig, roots: &[Lit], out: &mut Vec<usize>) {
        out.clear();
        if self.visit.len() < aig.num_nodes() {
            self.visit.resize(aig.num_nodes(), 0);
        }
        if self.visit_gen == u32::MAX {
            self.visit_gen = 0;
            self.visit.fill(0);
        }
        self.visit_gen += 1;
        let gen = self.visit_gen;
        let mut stack = std::mem::take(&mut self.walk_stack);
        stack.clear();
        for root in roots {
            let idx = root.var().index();
            if self.visit[idx] != gen {
                self.visit[idx] = gen;
                stack.push(idx as u32);
            }
        }
        while let Some(idx) = stack.pop() {
            if let Node::And { f0, f1 } = aig.nodes()[idx as usize] {
                out.push(idx as usize);
                for edge in [f0, f1] {
                    let child = edge.var().index();
                    if self.visit[child] != gen {
                        self.visit[child] = gen;
                        stack.push(child as u32);
                    }
                }
            }
        }
        self.walk_stack = stack;
        out.sort_unstable();
    }

    /// Cone-restricted re-evaluation: recomputes exactly the AND nodes
    /// in `cone` (ascending indices, as produced by
    /// [`TernSim::cone_of`]), leaving every other node untouched. This
    /// is what makes repeated widening probes cheap — the cost is the
    /// target cone, not the whole netlist.
    pub fn run_cone(&mut self, aig: &Aig, cone: &[usize]) {
        debug_assert!(cone.windows(2).all(|w| w[0] < w[1]), "cone not ascending");
        for &idx in cone {
            if let Node::And { f0, f1 } = aig.nodes()[idx] {
                self.eval_and(idx, f0, f1);
            }
        }
    }

    fn eval_and(&mut self, idx: usize, f0: Lit, f1: Lit) {
        for w in 0..self.words {
            let (a1, a0) = self.edge_planes(f0, w);
            let (b1, b0) = self.edge_planes(f1, w);
            self.ones[idx * self.words + w] = a1 & b1;
            self.zeros[idx * self.words + w] = a0 | b0;
        }
    }

    /// The `(ones, zeros)` planes of literal `l` at word `w` (complement
    /// = plane swap).
    fn edge_planes(&self, l: Lit, w: usize) -> (u64, u64) {
        let idx = l.var().index() * self.words + w;
        if l.is_complemented() {
            (self.zeros[idx], self.ones[idx])
        } else {
            (self.ones[idx], self.zeros[idx])
        }
    }

    /// The definitely-1 word of literal `l` (complement applied).
    pub fn lit_ones(&self, l: Lit, w: usize) -> u64 {
        self.edge_planes(l, w).0
    }

    /// The definitely-0 word of literal `l` (complement applied).
    pub fn lit_zeros(&self, l: Lit, w: usize) -> u64 {
        self.edge_planes(l, w).1
    }

    /// The bits of word `w` where literal `l` has a definite value.
    pub fn lit_defined(&self, l: Lit, w: usize) -> u64 {
        let (ones, zeros) = self.edge_planes(l, w);
        ones | zeros
    }

    /// Three-valued value of literal `l` in pattern `bit` (`None` = X).
    pub fn lit_value(&self, l: Lit, bit: usize) -> Option<bool> {
        let (ones, zeros) = self.edge_planes(l, bit / 64);
        let mask = 1u64 << (bit % 64);
        if ones & mask != 0 {
            Some(true)
        } else if zeros & mask != 0 {
            Some(false)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulation_matches_eval() {
        let mut aig = Aig::new();
        let ins: Vec<Lit> = (0..4).map(|_| aig.add_input().lit()).collect();
        let f = {
            let x = aig.xor(ins[0], ins[1]);
            let y = aig.and(ins[2], ins[3]);
            aig.or(x, y)
        };
        let sim = BitSim::random(&aig, 2, 42);
        for bit in [0usize, 1, 17, 63, 64, 100, 127] {
            let asg = sim.pattern_assignment(&aig, bit);
            let (word, off) = (bit / 64, bit % 64);
            let simulated = (sim.lit_word(f, word) >> off) & 1 != 0;
            assert_eq!(simulated, aig.eval(f, &asg), "pattern {bit}");
        }
    }

    #[test]
    fn constant_signature_is_all_zero() {
        let mut aig = Aig::new();
        let _ = aig.add_input();
        let sim = BitSim::random(&aig, 2, 7);
        assert_eq!(sim.signature(Lit::FALSE), vec![0, 0]);
        assert_eq!(sim.signature(Lit::TRUE), vec![!0u64, !0u64]);
    }

    #[test]
    fn counterexample_injection_distinguishes() {
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        let f = aig.or(a, b);
        let mut sim = BitSim::new(&aig, 1);
        // All-zero patterns: f and a have identical (zero) signatures.
        sim.run(&aig);
        assert!(sim.same_signature(f, a));
        // Inject the distinguishing assignment a=0, b=1 at bit 5.
        sim.set_pattern(&aig, 5, &[false, true]);
        sim.run(&aig);
        assert!(!sim.same_signature(f, a));
        assert_eq!(sim.distinguishing_pattern(f, a), Some(5));
    }

    #[test]
    fn normalized_signature_merges_phases() {
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        let f = aig.and(a, b);
        let sim = BitSim::random(&aig, 2, 3);
        let (sf, pf) = sim.normalized_signature(f);
        let (sg, pg) = sim.normalized_signature(!f);
        assert_eq!(sf, sg);
        assert_ne!(pf, pg);
    }

    #[test]
    fn grows_with_new_nodes() {
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        let mut sim = BitSim::random(&aig, 1, 9);
        let f = aig.and(a, b);
        sim.run(&aig);
        assert_eq!(sim.lit_word(f, 0), sim.lit_word(a, 0) & sim.lit_word(b, 0));
    }

    #[test]
    fn ternary_constants_and_x_propagation() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let f = aig.and(a.lit(), b.lit());
        let g = aig.or(a.lit(), b.lit());
        let mut sim = TernSim::new(&aig, 1);
        assert_eq!(sim.lit_value(Lit::FALSE, 0), Some(false));
        assert_eq!(sim.lit_value(Lit::TRUE, 0), Some(true));
        // Unset inputs are X and X propagates through both phases.
        sim.run(&aig);
        assert_eq!(sim.lit_value(f, 0), None);
        assert_eq!(sim.lit_value(!f, 0), None);
        // A controlling value absorbs an X; a non-controlling one keeps it.
        sim.set_var(a, 0, Some(false));
        sim.run(&aig);
        assert_eq!(sim.lit_value(f, 0), Some(false));
        assert_eq!(sim.lit_value(g, 0), None);
        sim.set_var(a, 0, Some(true));
        sim.run(&aig);
        assert_eq!(sim.lit_value(f, 0), None);
        assert_eq!(sim.lit_value(g, 0), Some(true));
        sim.set_var(b, 0, Some(true));
        sim.run(&aig);
        assert_eq!(sim.lit_value(f, 0), Some(true));
        assert_eq!(sim.lit_defined(f, 0) & 1, 1);
    }

    #[test]
    fn ternary_agrees_with_bitsim_on_definite_patterns() {
        let mut aig = Aig::new();
        let ins: Vec<Var> = (0..4).map(|_| aig.add_input()).collect();
        let f = {
            let x = aig.xor(ins[0].lit(), ins[1].lit());
            let y = aig.and(ins[2].lit(), ins[3].lit());
            aig.or(x, y)
        };
        let bits = BitSim::random(&aig, 2, 11);
        let mut tern = TernSim::new(&aig, 2);
        for (i, v) in ins.iter().enumerate() {
            for bit in 0..bits.num_patterns() {
                let val = bits.pattern_assignment(&aig, bit)[i];
                tern.set_var(*v, bit, Some(val));
            }
        }
        tern.run(&aig);
        for bit in 0..bits.num_patterns() {
            let expect = (bits.lit_word(f, bit / 64) >> (bit % 64)) & 1 != 0;
            assert_eq!(tern.lit_value(f, bit), Some(expect), "pattern {bit}");
        }
    }

    #[test]
    fn cone_restricted_reeval_matches_full_run() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let f = aig.and(a.lit(), b.lit());
        let g = aig.xor(f, c.lit());
        let unrelated = aig.and(c.lit(), a.lit());
        let cone = TernSim::cone_of(&aig, &[g]);
        assert!(cone.contains(&f.var().index()));
        assert!(!cone.contains(&unrelated.var().index()));
        let mut sim = TernSim::new(&aig, 1);
        // The buffered, generation-stamped walk sees the same cone, and
        // keeps seeing it when the plane is reused back-to-back.
        let mut buf = Vec::new();
        sim.cone_of_reused(&aig, &[g], &mut buf);
        assert_eq!(buf, cone);
        sim.cone_of_reused(&aig, &[unrelated], &mut buf);
        assert_eq!(buf, TernSim::cone_of(&aig, &[unrelated]));
        sim.cone_of_reused(&aig, &[g], &mut buf);
        assert_eq!(buf, cone);
        for v in [a, b, c] {
            sim.broadcast_var(v, Some(true));
        }
        sim.run(&aig);
        assert_eq!(sim.lit_value(g, 0), Some(false));
        // Flip one input and re-evaluate only g's cone: g updates, the
        // unrelated gate keeps its stale value.
        sim.broadcast_var(c, Some(false));
        sim.run_cone(&aig, &cone);
        assert_eq!(sim.lit_value(g, 0), Some(true));
        assert_eq!(sim.lit_value(unrelated, 0), Some(true), "outside cone");
        let mut full = TernSim::new(&aig, 1);
        for (v, val) in [(a, true), (b, true), (c, false)] {
            full.broadcast_var(v, Some(val));
        }
        full.run(&aig);
        assert_eq!(full.lit_value(g, 0), sim.lit_value(g, 0));
    }

    #[test]
    fn ternary_definite_outputs_hold_for_all_concretizations() {
        // One X input, all four assignments of the others: whenever the
        // ternary value is definite, both concretizations of the X agree.
        let mut aig = Aig::new();
        let ins: Vec<Var> = (0..3).map(|_| aig.add_input()).collect();
        let f = {
            let x = aig.ite(ins[0].lit(), ins[1].lit(), ins[2].lit());
            aig.xor(x, ins[1].lit())
        };
        for x_at in 0..3 {
            for mask in 0..4u32 {
                let mut sim = TernSim::new(&aig, 1);
                let mut concrete = vec![false; 3];
                let mut m = 0;
                for (i, v) in ins.iter().enumerate() {
                    if i == x_at {
                        sim.set_var(*v, 0, None);
                    } else {
                        let val = (mask >> m) & 1 != 0;
                        m += 1;
                        concrete[i] = val;
                        sim.set_var(*v, 0, Some(val));
                    }
                }
                sim.run(&aig);
                if let Some(v) = sim.lit_value(f, 0) {
                    for x_val in [false, true] {
                        concrete[x_at] = x_val;
                        assert_eq!(aig.eval(f, &concrete), v, "x at {x_at}, mask {mask}");
                    }
                }
            }
        }
    }
}
