//! A tour of the quantification engine's knobs: merge-only vs the full
//! flow, forward vs backward SAT-merge orders, and partial quantification
//! under shrinking growth budgets — the levers of Sections 2 and 4.
//!
//! Run with: `cargo run --example quantifier_lab`

use cbq::ckt::generators;
use cbq::ckt::random::similar_pair;
use cbq::mc::preimage::preimage_formula;
use cbq::prelude::*;
use cbq::quant::exists_many;

fn main() {
    // -------------------------------------------------------------
    // 1. Ablation on a realistic pre-image formula.
    // -------------------------------------------------------------
    let net = generators::fifo_ctrl(3);
    let mut aig = net.aig().clone();
    let pre = preimage_formula(&mut aig, &net, net.bad());
    let pis: Vec<Var> = net.primary_inputs().to_vec();
    println!(
        "== fifo_ctrl(3) pre-image, eliminating {} inputs ==",
        pis.len()
    );
    for (label, cfg) in [
        ("naive", QuantConfig::naive()),
        ("merge-only", QuantConfig::merge_only()),
        ("merge+opt", QuantConfig::full()),
    ] {
        let mut cnf = AigCnf::new();
        let res = exists_many(&mut aig, pre, &pis, &mut cnf, &cfg);
        println!(
            "  {:<11} {:>5} AND gates (sat checks: {})",
            label,
            aig.cone_size(res.lit),
            res.stats.sweep.sat_checks
        );
    }

    // -------------------------------------------------------------
    // 2. Forward vs backward merge order vs cofactor similarity.
    // -------------------------------------------------------------
    println!("\n== SAT-merge order on cofactor pairs of varying similarity ==");
    println!(
        "  {:<12} {:>16} {:>16}",
        "mutation", "forward checks", "backward checks"
    );
    for rate in [0.0, 0.05, 0.2, 0.5] {
        let mut a = Aig::new();
        let ins: Vec<Lit> = (0..10).map(|_| a.add_input().lit()).collect();
        let (f, g) = similar_pair(&mut a, &ins, 60, rate, 42);
        let mut checks = Vec::new();
        for order in [MergeOrder::Forward, MergeOrder::Backward] {
            let mut cnf = AigCnf::new();
            let cfg = SweepConfig {
                use_bdd_sweep: false,
                order,
                ..SweepConfig::default()
            };
            let res = sweep(&mut a.clone(), &[f, g], &mut cnf, &cfg);
            checks.push(res.stats.sat_checks);
        }
        println!("  {:<12.2} {:>16} {:>16}", rate, checks[0], checks[1]);
    }

    // -------------------------------------------------------------
    // 3. Partial quantification budget sweep.
    // -------------------------------------------------------------
    println!("\n== partial quantification budget sweep (arbiter(6) pre-image) ==");
    let net = generators::arbiter(6);
    let mut aig = net.aig().clone();
    let pre = preimage_formula(&mut aig, &net, net.bad());
    let pis: Vec<Var> = net.primary_inputs().to_vec();
    println!("  {:<10} {:>10} {:>10}", "budget", "residuals", "size");
    for budget in [1.0, 1.25, 1.5, 2.0, 4.0, f64::INFINITY] {
        let cfg = if budget.is_finite() {
            QuantConfig::full().with_budget(budget)
        } else {
            QuantConfig::full()
        };
        let mut cnf = AigCnf::new();
        let res = exists_many(&mut aig, pre, &pis, &mut cnf, &cfg);
        println!(
            "  {:<10} {:>10} {:>10}",
            if budget.is_finite() {
                format!("{budget:.2}x")
            } else {
                "∞".to_string()
            },
            res.remaining.len(),
            aig.cone_size(res.lit)
        );
    }
    println!("\ndone ✓");
}
