//! Cross-engine integration tests: every model-checking engine must agree
//! with the explicit-state oracle — verdict *and* minimal counterexample
//! depth — on the whole benchmark suite.

use cbq::ckt::generators;
use cbq::ckt::Network;
use cbq::mc::explicit;
use cbq::prelude::*;

fn suite() -> Vec<Network> {
    vec![
        generators::bounded_counter(4, 9),
        generators::bounded_counter_gap(4, 5, 11),
        generators::gray_counter(4),
        generators::token_ring(5),
        generators::token_ring_bug(5),
        generators::arbiter(4),
        generators::arbiter_bug(4),
        generators::lfsr(5, &[0, 2]),
        generators::fifo_ctrl(2),
        generators::mutex(),
        generators::mutex_bug(),
        generators::shift_ones(4),
        generators::counter_bug(4, 6),
    ]
}

fn oracle(net: &Network) -> Option<usize> {
    explicit::shortest_cex_depth(net, 10, 1 << 16)
}

fn assert_agrees(net: &Network, verdict: &Verdict, engine: &str, exact_depth: bool) {
    match (oracle(net), verdict) {
        (None, Verdict::Safe { .. }) => {}
        (Some(depth), Verdict::Unsafe { trace }) => {
            assert!(
                trace.validates(net),
                "{engine} on {}: trace does not replay",
                net.name()
            );
            if exact_depth {
                assert_eq!(
                    trace.len(),
                    depth + 1,
                    "{engine} on {}: non-minimal counterexample",
                    net.name()
                );
            }
        }
        (expected, got) => panic!(
            "{engine} on {}: oracle says {expected:?}, engine says {got}",
            net.name()
        ),
    }
}

#[test]
fn circuit_umc_matches_oracle() {
    for net in suite() {
        let run = CircuitUmc::default().check(&net);
        assert_agrees(&net, &run.verdict, "circuit-umc", true);
    }
}

#[test]
fn bdd_umc_backward_matches_oracle() {
    for net in suite() {
        let run = BddUmc::default().check(&net);
        assert_agrees(&net, &run.verdict, "bdd-umc-backward", true);
    }
}

#[test]
fn bdd_umc_forward_matches_oracle() {
    use cbq::mc::BddDirection;
    for net in suite() {
        let run = BddUmc {
            direction: BddDirection::Forward,
            ..BddUmc::default()
        }
        .check(&net);
        assert_agrees(&net, &run.verdict, "bdd-umc-forward", true);
    }
}

#[test]
fn bmc_finds_every_bug_at_minimal_depth() {
    for net in suite() {
        if let Some(depth) = oracle(&net) {
            let run = Bmc { max_depth: depth + 2 }.check(&net);
            assert_agrees(&net, &run.verdict, "bmc", true);
        }
    }
}

#[test]
fn k_induction_matches_oracle() {
    for net in suite() {
        let run = KInduction {
            max_k: 40,
            simple_path: true,
        }
        .check(&net);
        assert_agrees(&net, &run.verdict, "k-induction", true);
    }
}

#[test]
fn circuit_umc_with_tight_budget_and_enumeration_matches_oracle() {
    use cbq::mc::ResidualPolicy;
    for net in suite() {
        let engine = CircuitUmc {
            quant: QuantConfig::full().with_budget(1.1),
            residual: ResidualPolicy::Enumerate { max_rounds: 4096 },
            ..CircuitUmc::default()
        };
        let run = engine.check(&net);
        assert_agrees(&net, &run.verdict, "circuit-umc-partial", true);
    }
}

#[test]
fn forward_circuit_umc_matches_oracle() {
    use cbq::mc::ForwardCircuitUmc;
    for net in suite() {
        let run = ForwardCircuitUmc::default().check(&net);
        assert_agrees(&net, &run.verdict, "forward-circuit-umc", true);
    }
}

#[test]
fn naive_quantification_engine_matches_oracle() {
    // Ablation: even with merge and optimisation disabled, the traversal
    // must stay sound and complete.
    for net in suite() {
        let engine = CircuitUmc {
            quant: QuantConfig::naive(),
            ..CircuitUmc::default()
        };
        let run = engine.check(&net);
        assert_agrees(&net, &run.verdict, "circuit-umc-naive", true);
    }
}
