//! Shared assertions for the engine test modules: run an engine on a
//! network and check the verdict (and, for counterexamples, that the
//! trace replays and has the expected minimal depth).

use cbq_ckt::Network;

use crate::engine::{Budget, Engine};
use crate::verdict::Verdict;

/// Asserts that `engine` proves `net` safe.
pub(crate) fn check_safe(engine: &dyn Engine, net: &Network) {
    let run = engine.check(net, &Budget::unlimited());
    assert!(
        run.verdict.is_safe(),
        "{} on {}: should be safe, got {}",
        engine.name(),
        net.name(),
        run.verdict
    );
}

/// Asserts that `engine` refutes `net` with a replayable trace of the
/// given depth (when `expected_depth` is set).
pub(crate) fn check_unsafe(engine: &dyn Engine, net: &Network, expected_depth: Option<usize>) {
    let run = engine.check(net, &Budget::unlimited());
    match &run.verdict {
        Verdict::Unsafe { trace } => {
            assert!(
                trace.validates(net),
                "{} on {}: trace does not replay",
                engine.name(),
                net.name()
            );
            if let Some(d) = expected_depth {
                assert_eq!(
                    trace.len(),
                    d + 1,
                    "{} on {}: unexpected cex length",
                    engine.name(),
                    net.name()
                );
            }
        }
        other => panic!(
            "{} on {}: should be unsafe, got {other}",
            engine.name(),
            net.name()
        ),
    }
}
