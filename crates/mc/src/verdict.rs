//! Verdicts returned by every engine.

use std::fmt;

use cbq_ckt::Trace;

/// Outcome of a model-checking run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The bad states are unreachable; `iterations` is the number of
    /// fixpoint iterations (or the inductive depth) that proved it.
    Safe {
        /// Iterations/depth at which the proof closed.
        iterations: usize,
    },
    /// A concrete counterexample trace was found.
    Unsafe {
        /// The witness trace (replayable on the network).
        trace: Trace,
    },
    /// The engine gave up (bound exhausted, representation blow-up, …).
    Unknown {
        /// Human-readable reason.
        reason: String,
    },
}

impl Verdict {
    /// Whether the verdict proves the property.
    pub fn is_safe(&self) -> bool {
        matches!(self, Verdict::Safe { .. })
    }

    /// Whether the verdict refutes the property.
    pub fn is_unsafe(&self) -> bool {
        matches!(self, Verdict::Unsafe { .. })
    }

    /// The counterexample, if any.
    pub fn trace(&self) -> Option<&Trace> {
        match self {
            Verdict::Unsafe { trace } => Some(trace),
            _ => None,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Safe { iterations } => write!(f, "safe (after {iterations} iterations)"),
            Verdict::Unsafe { trace } => write!(f, "unsafe (cex of {} steps)", trace.len()),
            Verdict::Unknown { reason } => write!(f, "unknown ({reason})"),
        }
    }
}

/// A verdict bundled with engine-specific statistics.
#[derive(Clone, Debug)]
pub struct McRun<S> {
    /// The verdict.
    pub verdict: Verdict,
    /// Engine statistics.
    pub stats: S,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates_and_display() {
        let safe = Verdict::Safe { iterations: 3 };
        assert!(safe.is_safe());
        assert!(!safe.is_unsafe());
        assert!(safe.trace().is_none());
        assert!(format!("{safe}").contains("safe"));
        let unsafe_v = Verdict::Unsafe {
            trace: Trace::new(vec![vec![true]]),
        };
        assert!(unsafe_v.is_unsafe());
        assert_eq!(unsafe_v.trace().unwrap().len(), 1);
        let unk = Verdict::Unknown {
            reason: "bound".into(),
        };
        assert!(!unk.is_safe() && !unk.is_unsafe());
    }
}
