//! Open-addressing signature-class table for sweeping.
//!
//! Simulation-guided sweeping (CEC candidate classes, don't-care
//! simplification, the portfolio merge scout) groups literals by their
//! simulation signature. The obvious `HashMap<Vec<u64>, Vec<Lit>>` pays a
//! SipHash pass per insertion and iterates in random order; this table
//! hashes with FNV-1a, probes linearly in a power-of-two slot array, and
//! keeps classes in **first-insertion order**, so class enumeration is
//! deterministic without an extra sort.

use crate::lit::Lit;

/// Groups literals by equal simulation signature (`Vec<u64>` key).
///
/// ```
/// use cbq_aig::{Lit, SigClasses};
/// let mut classes = SigClasses::new();
/// classes.insert(&[0b1010], Lit::from_code(4));
/// classes.insert(&[0b0101], Lit::from_code(6));
/// classes.insert(&[0b1010], Lit::from_code(8));
/// let classes = classes.into_entries();
/// assert_eq!(classes.len(), 2);
/// assert_eq!(classes[0].1.len(), 2); // the two 0b1010 literals
/// ```
#[derive(Clone, Debug, Default)]
pub struct SigClasses {
    /// Entry index per slot; `u32::MAX` marks an empty slot.
    slots: Vec<u32>,
    /// Cached hash per slot (valid where `slots` is occupied), so probing
    /// compares one `u64` before touching the full signature.
    hashes: Vec<u64>,
    entries: Vec<(Vec<u64>, Vec<Lit>)>,
}

fn sig_hash(sig: &[u64]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = OFFSET;
    for &w in sig {
        // FNV-1a, word-at-a-time (we only ever hash whole u64 planes).
        h = (h ^ w).wrapping_mul(PRIME);
    }
    h
}

impl SigClasses {
    /// An empty table.
    pub fn new() -> SigClasses {
        SigClasses::default()
    }

    /// An empty table pre-sized for about `n` distinct signatures.
    pub fn with_capacity(n: usize) -> SigClasses {
        let cap = (n.max(8) * 2).next_power_of_two();
        SigClasses {
            slots: vec![u32::MAX; cap],
            hashes: vec![0; cap],
            entries: Vec::with_capacity(n),
        }
    }

    /// Number of distinct signatures seen.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no literal has been inserted yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds `lit` to the class of `sig`, creating the class if new.
    pub fn insert(&mut self, sig: &[u64], lit: Lit) {
        self.class_mut(sig).push(lit);
    }

    /// The (possibly fresh) member list of the class of `sig`.
    pub fn class_mut(&mut self, sig: &[u64]) -> &mut Vec<Lit> {
        if (self.entries.len() + 1) * 4 >= self.slots.len() * 3 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let h = sig_hash(sig);
        let mut i = (h as usize) & mask;
        loop {
            let e = self.slots[i];
            if e == u32::MAX {
                let idx = self.entries.len();
                self.slots[i] = u32::try_from(idx).expect("class count fits u32");
                self.hashes[i] = h;
                self.entries.push((sig.to_vec(), Vec::new()));
                return &mut self.entries[idx].1;
            }
            if self.hashes[i] == h && self.entries[e as usize].0 == sig {
                return &mut self.entries[e as usize].1;
            }
            i = (i + 1) & mask;
        }
    }

    /// The member list of the class of `sig`, if any literal was inserted
    /// under it.
    pub fn class(&self, sig: &[u64]) -> Option<&[Lit]> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let h = sig_hash(sig);
        let mut i = (h as usize) & mask;
        loop {
            let e = self.slots[i];
            if e == u32::MAX {
                return None;
            }
            if self.hashes[i] == h && self.entries[e as usize].0 == sig {
                return Some(&self.entries[e as usize].1);
            }
            i = (i + 1) & mask;
        }
    }

    /// All classes, in first-insertion order.
    pub fn entries(&self) -> &[(Vec<u64>, Vec<Lit>)] {
        &self.entries
    }

    /// Consumes the table into `(signature, members)` pairs in
    /// first-insertion order.
    pub fn into_entries(self) -> Vec<(Vec<u64>, Vec<Lit>)> {
        self.entries
    }

    fn grow(&mut self) {
        let cap = (self.slots.len().max(8) * 2).next_power_of_two();
        self.slots = vec![u32::MAX; cap];
        self.hashes = vec![0; cap];
        let mask = cap - 1;
        for (idx, (sig, _)) in self.entries.iter().enumerate() {
            let h = sig_hash(sig);
            let mut i = (h as usize) & mask;
            while self.slots[i] != u32::MAX {
                i = (i + 1) & mask;
            }
            self.slots[i] = idx as u32;
            self.hashes[i] = h;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_by_signature_in_insertion_order() {
        let mut t = SigClasses::new();
        t.insert(&[1, 2], Lit::from_code(10));
        t.insert(&[3, 4], Lit::from_code(12));
        t.insert(&[1, 2], Lit::from_code(14));
        t.insert(&[5, 6], Lit::from_code(16));
        assert_eq!(t.len(), 3);
        assert_eq!(
            t.class(&[1, 2]),
            Some(&[Lit::from_code(10), Lit::from_code(14)][..])
        );
        assert_eq!(t.class(&[9, 9]), None);
        let entries = t.into_entries();
        assert_eq!(entries[0].0, vec![1, 2]);
        assert_eq!(entries[1].0, vec![3, 4]);
        assert_eq!(entries[2].0, vec![5, 6]);
    }

    /// Differential against `HashMap` grouping across growth boundaries.
    #[test]
    fn matches_hashmap_grouping() {
        use std::collections::HashMap;
        let mut t = SigClasses::new();
        let mut reference: HashMap<Vec<u64>, Vec<Lit>> = HashMap::new();
        // A deterministic pseudo-random stream with plenty of repeats.
        let mut x = 0x1234_5678_u64;
        for n in 0..4000u32 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let sig = vec![x % 97, x % 13];
            let lit = Lit::from_code(n * 2);
            t.insert(&sig, lit);
            reference.entry(sig).or_default().push(lit);
        }
        assert_eq!(t.len(), reference.len());
        for (sig, members) in t.entries() {
            assert_eq!(Some(members), reference.get(sig), "class {sig:?}");
        }
    }

    #[test]
    fn empty_and_presized_tables_behave() {
        let t = SigClasses::new();
        assert!(t.is_empty());
        assert_eq!(t.class(&[0]), None);
        let mut t = SigClasses::with_capacity(100);
        t.insert(&[], Lit::TRUE);
        t.insert(&[], Lit::FALSE);
        assert_eq!(t.class(&[]), Some(&[Lit::TRUE, Lit::FALSE][..]));
        assert_eq!(t.len(), 1);
    }
}
