//! Budget-exhaustion tests: a zero or near-zero [`Budget`] must yield
//! `Verdict::Bounded` on every registered engine — promptly, never a
//! hang — and a budget generous enough must not change the verdict.

use std::time::{Duration, Instant};

use cbq::ckt::generators;
use cbq::mc::{registry, Resource};
use cbq::prelude::*;

#[test]
fn zero_step_budget_bounds_every_engine() {
    let net = generators::token_ring(5);
    for spec in registry() {
        let start = Instant::now();
        let run = (spec.build)().check(&net, &Budget::unlimited().with_steps(0));
        match run.verdict {
            Verdict::Bounded {
                resource: Resource::Steps,
                limit: 0,
            } => {}
            other => panic!("{}: expected step-bounded, got {other}", spec.name),
        }
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "{}: zero-step budget took {:?}",
            spec.name,
            start.elapsed()
        );
    }
}

#[test]
fn zero_timeout_bounds_every_engine() {
    let net = generators::token_ring(5);
    for spec in registry() {
        let run = (spec.build)().check(&net, &Budget::unlimited().with_timeout(Duration::ZERO));
        match run.verdict {
            Verdict::Bounded {
                resource: Resource::WallClock,
                ..
            } => {}
            other => panic!("{}: expected time-bounded, got {other}", spec.name),
        }
    }
}

#[test]
fn tiny_node_budget_bounds_every_engine() {
    let net = generators::token_ring(5);
    for spec in registry() {
        // (The portfolio splits the budget across members, so only the
        // resource kind — not the limit value — is uniform.)
        let run = (spec.build)().check(&net, &Budget::unlimited().with_nodes(1));
        match run.verdict {
            Verdict::Bounded {
                resource: Resource::Nodes,
                ..
            } => {}
            other => panic!("{}: expected node-bounded, got {other}", spec.name),
        }
    }
}

#[test]
fn tiny_sat_budget_never_hangs() {
    // BDD engines issue no SAT checks, so they may legitimately conclude;
    // everyone else must trip the SAT-check budget. Either way: no hang,
    // and never a wrong conclusive verdict (token_ring(5) is safe).
    let net = generators::token_ring(5);
    for spec in registry() {
        let run = (spec.build)().check(&net, &Budget::unlimited().with_sat_checks(1));
        assert!(
            !run.verdict.is_unsafe(),
            "{}: bogus cex under a SAT budget: {}",
            spec.name,
            run.verdict
        );
    }
}

#[test]
fn tight_timeouts_cancel_cooperatively_and_promptly() {
    // The deadline is threaded into the exists_many elimination loop and
    // the sweep candidate loop, so even circuits whose single
    // quantification is expensive return Bounded quickly instead of
    // finishing the pass first. Partition workers report Bounded too.
    use cbq::mc::{CircuitUmc, ForwardCircuitUmc, PartitionConfig, PartitionCount};
    let net = generators::arbiter(7);
    for timeout_ms in [1u64, 20] {
        for parts in [1usize, 4] {
            let budget = Budget::unlimited().with_timeout(Duration::from_millis(timeout_ms));
            let circuit = CircuitUmc {
                partition: PartitionConfig::with_count(PartitionCount::Fixed(parts)),
                ..CircuitUmc::default()
            };
            let start = Instant::now();
            let run = circuit.check(&net, &budget);
            assert!(
                !run.verdict.is_conclusive() || run.verdict.is_safe(),
                "bogus verdict under a tight deadline: {}",
                run.verdict
            );
            assert!(
                start.elapsed() < Duration::from_secs(20),
                "circuit x{parts}: {timeout_ms}ms deadline overshot to {:?}",
                start.elapsed()
            );
            let forward = ForwardCircuitUmc {
                partition: PartitionConfig::with_count(PartitionCount::Fixed(parts)),
                ..ForwardCircuitUmc::default()
            };
            let start = Instant::now();
            let run = forward.check(&net, &budget);
            assert!(!run.verdict.is_unsafe(), "bogus cex: {}", run.verdict);
            assert!(
                start.elapsed() < Duration::from_secs(20),
                "forward x{parts}: {timeout_ms}ms deadline overshot to {:?}",
                start.elapsed()
            );
        }
    }
}

#[test]
fn ic3_returns_cleanly_under_tiny_budgets() {
    // Per-call budgets on the new engine: every axis must come back as a
    // clean Bounded (or at worst Unknown) — promptly, with sane stats,
    // never a hang or a bogus conclusive verdict. The deep gap circuit
    // needs many frames, so small step budgets genuinely interrupt it.
    use cbq::mc::{Ic3, Ic3Stats};
    let net = generators::bounded_counter_gap(4, 6, 12);
    for budget in [
        Budget::unlimited().with_steps(0),
        Budget::unlimited().with_steps(2),
        Budget::unlimited().with_nodes(1),
        Budget::unlimited().with_sat_checks(3),
        Budget::unlimited().with_timeout(Duration::ZERO),
    ] {
        let start = Instant::now();
        let run = Ic3::default().check(&net, &budget);
        assert!(
            run.verdict.is_bounded() || matches!(run.verdict, Verdict::Unknown { .. }),
            "budget {budget:?}: expected bounded/unknown, got {}",
            run.verdict
        );
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "budget {budget:?}: took {:?}",
            start.elapsed()
        );
    }
    // A short-but-nonzero deadline either interrupts the run (Bounded)
    // or lets the engine finish correctly — never a wrong conclusion.
    let run = Ic3::default().check(
        &net,
        &Budget::unlimited().with_timeout(Duration::from_millis(1)),
    );
    assert!(
        !run.verdict.is_unsafe(),
        "bogus cex under a deadline: {}",
        run.verdict
    );
    // A step budget of n permits frames F1..F_{n+1}: the run's frame
    // count must respect it.
    let run = Ic3::default().check(&net, &Budget::unlimited().with_steps(2));
    let detail = run.detail::<Ic3Stats>().expect("ic3 stats");
    assert!(
        detail.frames <= 3,
        "step budget ignored: {} frames",
        detail.frames
    );
    // And a generous budget still settles both polarities.
    let generous = Budget::unlimited().with_timeout(Duration::from_secs(60));
    assert!(Ic3::default().check(&net, &generous).verdict.is_safe());
    let buggy = generators::counter_bug(4, 6);
    assert!(Ic3::default().check(&buggy, &generous).verdict.is_unsafe());
}

#[test]
fn sat_conflict_budget_applies_per_solve_call() {
    // Regression: `set_conflict_budget` is documented as a *per-call*
    // limit. A leaking implementation (budget measured against the
    // cumulative conflict counter) would let the first call consume the
    // whole budget and every later call return Unknown after zero work.
    #![allow(clippy::needless_range_loop)]
    use cbq::sat::{SatLit, SatResult, SatVar, Solver};
    let mut s = Solver::new();
    let (p, h) = (7, 6); // pigeonhole: far more than 5 conflicts to refute
    let v: Vec<Vec<SatVar>> = (0..p)
        .map(|_| (0..h).map(|_| s.new_var()).collect())
        .collect();
    for row in &v {
        let clause: Vec<SatLit> = row.iter().map(|x| x.pos()).collect();
        s.add_clause(&clause);
    }
    for j in 0..h {
        for i1 in 0..p {
            for i2 in (i1 + 1)..p {
                s.add_clause(&[v[i1][j].neg(), v[i2][j].neg()]);
            }
        }
    }
    s.set_conflict_budget(Some(5));
    for call in 0..4 {
        assert_eq!(s.solve(), SatResult::Unknown, "call {call}");
    }
    assert!(
        s.stats().conflicts >= 20,
        "budget leaked across calls: only {} conflicts spent over 4 calls",
        s.stats().conflicts
    );
    s.set_conflict_budget(None);
    assert_eq!(s.solve(), SatResult::Unsat);
}

#[test]
fn generous_budget_leaves_verdicts_intact() {
    let safe = generators::mutex();
    let buggy = generators::mutex_bug();
    let budget = Budget::unlimited()
        .with_steps(10_000)
        .with_timeout(Duration::from_secs(60));
    for spec in registry() {
        let run = (spec.build)().check(&safe, &budget);
        if spec.complete {
            assert!(run.verdict.is_safe(), "{}: {}", spec.name, run.verdict);
        } else {
            assert!(!run.verdict.is_unsafe(), "{}: {}", spec.name, run.verdict);
        }
        let run = (spec.build)().check(&buggy, &budget);
        assert!(run.verdict.is_unsafe(), "{}: {}", spec.name, run.verdict);
    }
}
