//! Property-based tests of the BDD package: canonicity, Boolean algebra,
//! quantification semantics and AIG conversion agreement.

use std::collections::HashMap;

use proptest::prelude::*;

use cbq_aig::{Aig, Lit};
use cbq_bdd::{BddManager, BddRef};

const N: usize = 5;

#[derive(Clone, Debug)]
enum Op {
    And(usize, usize),
    Or(usize, usize),
    Xor(usize, usize),
    Not(usize),
    Ite(usize, usize, usize),
}

fn ops_strategy(max_ops: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Op::And(a, b)),
            (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Op::Or(a, b)),
            (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Op::Xor(a, b)),
            any::<usize>().prop_map(Op::Not),
            (any::<usize>(), any::<usize>(), any::<usize>()).prop_map(|(a, b, c)| Op::Ite(a, b, c)),
        ],
        1..=max_ops,
    )
}

fn build(mgr: &mut BddManager, ops: &[Op]) -> BddRef {
    let mut pool: Vec<BddRef> = (0..N as u32).map(|i| mgr.var(i)).collect();
    for op in ops {
        let pick = |i: usize| pool[i % pool.len()];
        let r = match *op {
            Op::And(a, b) => {
                let (x, y) = (pick(a), pick(b));
                mgr.and(x, y)
            }
            Op::Or(a, b) => {
                let (x, y) = (pick(a), pick(b));
                mgr.or(x, y)
            }
            Op::Xor(a, b) => {
                let (x, y) = (pick(a), pick(b));
                mgr.xor(x, y)
            }
            Op::Not(a) => {
                let x = pick(a);
                mgr.not(x)
            }
            Op::Ite(a, b, c) => {
                let (x, y, z) = (pick(a), pick(b), pick(c));
                mgr.ite(x, y, z)
            }
        };
        pool.push(r);
    }
    *pool.last().expect("non-empty")
}

fn truth_table(mgr: &BddManager, f: BddRef) -> u64 {
    let mut tt = 0u64;
    for mask in 0..1u32 << N {
        let asg: Vec<bool> = (0..N).map(|i| (mask >> i) & 1 != 0).collect();
        if mgr.eval(f, &asg) {
            tt |= 1 << mask;
        }
    }
    tt
}

/// Mask of all `2^(2^N)`-entry truth-table bits that are in use.
fn tt_mask() -> u64 {
    if (1usize << N) >= 64 {
        u64::MAX
    } else {
        (1u64 << (1 << N)) - 1
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Canonicity: equal truth tables iff equal node references.
    #[test]
    fn canonicity(ops1 in ops_strategy(16), ops2 in ops_strategy(16)) {
        let mut mgr = BddManager::new(N);
        let f = build(&mut mgr, &ops1);
        let g = build(&mut mgr, &ops2);
        prop_assert_eq!(truth_table(&mgr, f) == truth_table(&mgr, g), f == g);
    }

    /// Negation is an involution with complementary truth table.
    #[test]
    fn negation_involution(ops in ops_strategy(16)) {
        let mut mgr = BddManager::new(N);
        let f = build(&mut mgr, &ops);
        let nf = mgr.not(f);
        prop_assert_eq!(mgr.not(nf), f);
        prop_assert_eq!(truth_table(&mgr, nf), !truth_table(&mgr, f) & tt_mask());
    }

    /// ∃x.f evaluates as f|x=0 | f|x=1, and ∀x.f as the conjunction.
    #[test]
    fn quantification_semantics(ops in ops_strategy(16), vi in 0..N) {
        let mut mgr = BddManager::new(N);
        let f = build(&mut mgr, &ops);
        let ex = mgr.exists(f, &[vi as u32]);
        let all = mgr.forall(f, &[vi as u32]);
        let f1 = mgr.restrict(f, vi as u32, true);
        let f0 = mgr.restrict(f, vi as u32, false);
        let or = mgr.or(f1, f0);
        let and = mgr.and(f1, f0);
        prop_assert_eq!(ex, or);
        prop_assert_eq!(all, and);
    }

    /// sat_count matches exhaustive counting.
    #[test]
    fn sat_count_is_exact(ops in ops_strategy(16)) {
        let mut mgr = BddManager::new(N);
        let f = build(&mut mgr, &ops);
        let expect = truth_table(&mgr, f).count_ones() as f64;
        prop_assert_eq!(mgr.sat_count(f), expect);
    }

    /// one_sat returns a genuine satisfying assignment.
    #[test]
    fn one_sat_is_sound(ops in ops_strategy(16)) {
        let mut mgr = BddManager::new(N);
        let f = build(&mut mgr, &ops);
        match mgr.one_sat(f) {
            None => prop_assert_eq!(f, BddRef::ZERO),
            Some(partial) => {
                let asg: Vec<bool> = partial.iter().map(|o| o.unwrap_or(false)).collect();
                prop_assert!(mgr.eval(f, &asg));
            }
        }
    }

    /// AIG → BDD → AIG round-trips preserve the function.
    #[test]
    fn aig_bdd_roundtrip(ops in ops_strategy(16)) {
        // Build the same structure as an AIG first.
        let mut aig = Aig::new();
        let mut pool: Vec<Lit> = (0..N).map(|_| aig.add_input().lit()).collect();
        for op in &ops {
            let pick = |i: usize| pool[i % pool.len()];
            let l = match *op {
                Op::And(a, b) => { let (x, y) = (pick(a), pick(b)); aig.and(x, y) }
                Op::Or(a, b) => { let (x, y) = (pick(a), pick(b)); aig.or(x, y) }
                Op::Xor(a, b) => { let (x, y) = (pick(a), pick(b)); aig.xor(x, y) }
                Op::Not(a) => !pick(a),
                Op::Ite(a, b, c) => { let (x, y, z) = (pick(a), pick(b), pick(c)); aig.ite(x, y, z) }
            };
            pool.push(l);
        }
        let root = *pool.last().expect("non-empty");
        let var_level: HashMap<_, _> = (0..N)
            .map(|i| (aig.input_var(i), i as u32))
            .collect();
        let mut mgr = BddManager::new(N);
        let b = mgr.from_aig(&aig, root, &var_level, usize::MAX).unwrap();
        let lits: Vec<Lit> = (0..N).map(|i| aig.input_var(i).lit()).collect();
        let back = mgr.to_aig(&mut aig, b, &lits);
        for mask in 0..1u32 << N {
            let asg: Vec<bool> = (0..N).map(|i| (mask >> i) & 1 != 0).collect();
            prop_assert_eq!(aig.eval(root, &asg), aig.eval(back, &asg));
            prop_assert_eq!(aig.eval(root, &asg), mgr.eval(b, &asg));
        }
    }
}
