//! `cbq` — command-line front end for the circuit-based quantification
//! stack.
//!
//! ```text
//! cbq gen <family> [N [K]]            emit a benchmark circuit as ASCII AIGER
//! cbq info <file.aag>                 print circuit statistics
//! cbq check <file.aag> [--engine E] [budget flags]
//!                                     model-check via the engine registry
//! cbq engines                         list the registered engines
//! cbq quantify <file.aag> [--mode M]  eliminate all inputs of output 0
//! cbq sat <file.cnf> [--backend B]    solve a DIMACS file, print SolverStats
//! cbq dot <file.aag>                  emit Graphviz for the bad-state cone
//! cbq serve [--listen ADDR]           run the model-checking service
//! cbq submit <file.aag> [--to ADDR]   send a job to a running service
//! ```
//!
//! Every subcommand accepts `--help`/`-h`. Unknown flags, engines, or
//! modes are errors (exit 2), never silent fallbacks.

use std::process::ExitCode;
use std::time::Duration;

use cbq::ckt::io::{read_network, write_network};
use cbq::ckt::{generators, Network};
use cbq::mc::json::{json_str, json_u64_list, run_to_json, solver_json};
use cbq::mc::{by_name_tuned, engine_names, registry, EngineTuning, PartitionCount, SplitPolicy};
use cbq::prelude::*;
use cbq::quant::{exists_bdd, exists_many, VarOrder};
use cbq::sat::reference::ReferenceSolver;
use cbq::sat::{dimacs, drat, ProofMode, SatBackend};
use cbq::serve::{client, CheckRequest, Json, ServeConfig, Server};

const USAGE: &str = "cbq — circuit-based quantification (DATE 2005 reproduction)

usage: cbq <command> [args]

commands:
  gen <family> [N [K]]     emit a benchmark circuit as ASCII AIGER
  info <file.aag>          print circuit statistics
  check <file.aag> [...]   model-check a circuit (see `cbq check --help`)
  engines                  list the registered model-checking engines
  quantify <file.aag> [..] quantify inputs out of a formula
  sat <file.cnf> [...]     solve a DIMACS CNF file (see `cbq sat --help`)
  dot <file.aag>           emit Graphviz for the bad-state cone
  serve [--listen ADDR]    run the model-checking service (see `cbq serve --help`)
  submit <file.aag> [...]  send a job to a running service (see `cbq submit --help`)

run `cbq <command> --help` for per-command options";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("engines") => cmd_engines(&args[1..]),
        Some("quantify") => cmd_quantify(&args[1..]),
        Some("sat") => cmd_sat(&args[1..]),
        Some("dot") => cmd_dot(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("--help" | "-h" | "help") => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn wants_help(args: &[String]) -> bool {
    args.iter().any(|a| a == "--help" || a == "-h")
}

/// The `i`-th positional argument as a number; absent → `default`,
/// present but non-numeric → an error (no silent fallback).
fn parse_num(args: &[String], i: usize, default: u64) -> Result<u64, String> {
    match args.get(i) {
        None => Ok(default),
        Some(s) => s
            .parse()
            .map_err(|_| format!("expected a number, got `{s}`")),
    }
}

/// Positional arguments, `--flag value` pairs, and valueless switches.
type ParsedArgs<'a> = (Vec<&'a str>, Vec<(&'a str, &'a str)>, Vec<&'a str>);

/// Splits `args` into positional arguments, `--flag value` pairs, and
/// valueless `--switch` flags, rejecting anything outside
/// `known`/`known_switch`.
fn parse_flags<'a>(
    args: &'a [String],
    known: &[&str],
    known_switch: &[&str],
) -> Result<ParsedArgs<'a>, String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut switches = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(flag) = arg.strip_prefix("--") {
            if known_switch.contains(&flag) {
                switches.push(flag);
                continue;
            }
            if !known.contains(&flag) {
                return Err(format!(
                    "unknown flag `--{flag}` (expected one of: {})",
                    known
                        .iter()
                        .map(|f| format!("--{f}"))
                        .chain(known_switch.iter().map(|f| format!("--{f}")))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
            let Some(value) = it.next() else {
                return Err(format!("flag `--{flag}` needs a value"));
            };
            flags.push((flag, value.as_str()));
        } else {
            positional.push(arg.as_str());
        }
    }
    Ok((positional, flags, switches))
}

fn parse_count(flag: &str, value: &str) -> Result<u64, String> {
    value
        .parse()
        .map_err(|_| format!("flag `--{flag}` needs a number, got `{value}`"))
}

const GEN_HELP: &str = "usage: cbq gen <family> [N [K]]

Emits a benchmark circuit as ASCII AIGER on stdout.

families: counter, counter-bug, gap, gray, ring, ring-bug, arbiter,
          arbiter-bug, lfsr, fifo, mutex, mutex-bug, shift";

fn cmd_gen(args: &[String]) -> ExitCode {
    if wants_help(args) {
        println!("{GEN_HELP}");
        return ExitCode::SUCCESS;
    }
    let Some(family) = args.first() else {
        eprintln!("{GEN_HELP}");
        return ExitCode::from(2);
    };
    let (n, k) = match (parse_num(args, 1, 8), parse_num(args, 2, 0)) {
        (Ok(n), Ok(k)) => (n as usize, k),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}\n\n{GEN_HELP}");
            return ExitCode::from(2);
        }
    };
    let net = match family.as_str() {
        "counter" => generators::bounded_counter(n, if k == 0 { (1 << n) as u64 - 2 } else { k }),
        "counter-bug" => generators::counter_bug(n, if k == 0 { 10 } else { k }),
        "gap" => generators::bounded_counter_gap(n, k.max(2), k.max(2) + 10),
        "gray" => generators::gray_counter(n),
        "ring" => generators::token_ring(n),
        "ring-bug" => generators::token_ring_bug(n.max(4)),
        "arbiter" => generators::arbiter(n),
        "arbiter-bug" => generators::arbiter_bug(n),
        "lfsr" => generators::lfsr(n, &[0, 2, 3]),
        "fifo" => generators::fifo_ctrl(n.min(8)),
        "mutex" => generators::mutex(),
        "mutex-bug" => generators::mutex_bug(),
        "shift" => generators::shift_ones(n),
        other => {
            eprintln!("unknown family `{other}`\n\n{GEN_HELP}");
            return ExitCode::from(2);
        }
    };
    print!("{}", write_network(&net));
    ExitCode::SUCCESS
}

fn load(path: &str) -> Result<Network, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    read_network(&text, path).map_err(|e| format!("{path}: {e}"))
}

const INFO_HELP: &str = "usage: cbq info <file.aag>

Prints circuit statistics (latches, inputs, gates, depth, initial state).";

fn cmd_info(args: &[String]) -> ExitCode {
    if wants_help(args) {
        println!("{INFO_HELP}");
        return ExitCode::SUCCESS;
    }
    let Some(path) = args.first() else {
        eprintln!("{INFO_HELP}");
        return ExitCode::from(2);
    };
    match load(path) {
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
        Ok(net) => {
            let aig = net.aig();
            let mut roots: Vec<Lit> = net.latches().iter().map(|l| l.next).collect();
            roots.push(net.bad());
            let stats = aig.cone_stats(&roots);
            println!("name     : {}", net.name());
            println!("latches  : {}", net.num_latches());
            println!("inputs   : {}", net.num_inputs());
            println!("and gates: {}", stats.ands);
            println!("depth    : {}", stats.depth);
            println!("initial  : {}", net.initial_cube());
            ExitCode::SUCCESS
        }
    }
}

const ENGINES_HELP: &str = "usage: cbq engines

Lists the registered model-checking engines (`cbq check --engine <name>`).";

fn cmd_engines(args: &[String]) -> ExitCode {
    if wants_help(args) {
        println!("{ENGINES_HELP}");
        return ExitCode::SUCCESS;
    }
    for spec in registry() {
        let traits = match (spec.complete, spec.minimal_cex) {
            (true, true) => "complete, minimal cex",
            (true, false) => "complete",
            (false, true) => "refutation only, minimal cex",
            (false, false) => "refutation only",
        };
        println!("{:<12} {}  [{traits}]", spec.name, spec.summary);
    }
    ExitCode::SUCCESS
}

fn check_help() -> String {
    format!(
        "usage: cbq check <file.aag> [--engine E] [--sweep on|off]
                 [--quant-order O] [--partitions N|auto] [--split P]
                 [--ic3-frames N] [--ic3-gen core|drop|ternary|ctg|ctg-deep]
                 [--itp-frames N]
                 [--portfolio-par] [--portfolio-bus on|off]
                 [--steps N] [--nodes N] [--sat-checks N]
                 [--timeout-ms N] [--json]

Model-checks the circuit's bad-state property.

  --engine E         engine to run (default: circuit); one of: {}
  --sweep on|off     state-set sweeping between iterations
                     (circuit/forward engines; default: on)
  --quant-order O    quantification variable order: cheapest | static | given
                     (circuit/forward engines; default: cheapest)
  --partitions N     partitioned state set: start with N partitions
                     (`auto` = one per CPU core), per-partition image
                     computation in parallel (circuit/forward engines;
                     default: 1 = monolithic)
  --split P          partition split policy: latch | origin
                     (default: latch = window cofactor by balance score)
  --ic3-frames N     IC3 frame-count safety net (ic3 engine; default 10000)
  --ic3-gen M        IC3 generalization effort, a cumulative ladder:
                     core (unsat-core shrink only) | drop (+ literal
                     dropping) | ternary (+ ternary-simulation
                     predecessor widening) | ctg (+ counterexample-to-
                     generalization blocking) | ctg-deep (+ recursive
                     CTG descent with its own strike budget;
                     ic3 engine; default: ctg)
  --itp-frames N     interpolation unrolling-depth safety net
                     (itp engine; default 64)
  --portfolio-par    run the portfolio members concurrently (scoped
                     threads, first conclusive answer wins; portfolio
                     engine only — the sequential cascade is the default)
  --portfolio-bus on|off
                     cross-engine lemma bus in parallel mode: IC3 frame
                     clauses and sweep-proven merges are shared and
                     re-validated by each consumer (default: on)
  --steps N          budget: at most N engine iterations / depth frames
  --nodes N          budget: at most N representation nodes
  --sat-checks N     budget: at most N SAT checks
  --timeout-ms N     budget: wall-clock deadline in milliseconds
  --json             emit the run record as one JSON object on stdout

exit code: 0 safe, 1 unsafe, 2 usage/input error, 3 unknown,
           4 budget exhausted",
        engine_names().join(", ")
    )
}

fn cmd_check(args: &[String]) -> ExitCode {
    if wants_help(args) {
        println!("{}", check_help());
        return ExitCode::SUCCESS;
    }
    let flags = match parse_flags(
        args,
        &[
            "engine",
            "sweep",
            "quant-order",
            "partitions",
            "split",
            "ic3-frames",
            "ic3-gen",
            "itp-frames",
            "portfolio-bus",
            "steps",
            "nodes",
            "sat-checks",
            "timeout-ms",
            "max",
        ],
        &["json", "portfolio-par"],
    ) {
        Ok((positional, flags, switches)) if positional.len() == 1 => {
            (positional[0].to_string(), flags, switches)
        }
        Ok((positional, ..)) => {
            eprintln!(
                "expected exactly one <file.aag>, got {}\n\n{}",
                positional.len(),
                check_help()
            );
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{}", check_help());
            return ExitCode::from(2);
        }
    };
    let (path, flags, switches) = flags;
    let json = switches.contains(&"json");
    let mut engine_name = "circuit";
    let mut budget = Budget::unlimited();
    let mut tuning = EngineTuning::default();
    for (flag, value) in flags {
        match flag {
            "engine" => engine_name = value,
            "sweep" => match value {
                "on" => tuning.sweep = Some(true),
                "off" => tuning.sweep = Some(false),
                other => {
                    eprintln!("flag `--sweep` expects `on` or `off`, got `{other}`");
                    return ExitCode::from(2);
                }
            },
            "quant-order" => match VarOrder::from_name(value) {
                Some(order) => tuning.quant_order = Some(order),
                None => {
                    eprintln!(
                        "flag `--quant-order` expects cheapest, static, or given, got `{value}`"
                    );
                    return ExitCode::from(2);
                }
            },
            "partitions" => match PartitionCount::from_name(value) {
                Some(count) => tuning.partitions = Some(count),
                None => {
                    eprintln!(
                        "flag `--partitions` expects a positive number or `auto`, got `{value}`"
                    );
                    return ExitCode::from(2);
                }
            },
            "split" => match SplitPolicy::from_name(value) {
                Some(policy) => tuning.split = Some(policy),
                None => {
                    eprintln!("flag `--split` expects `latch` or `origin`, got `{value}`");
                    return ExitCode::from(2);
                }
            },
            "ic3-frames" => match parse_count(flag, value) {
                Ok(n) if n >= 1 => tuning.ic3_frames = Some(n as usize),
                Ok(_) => {
                    eprintln!("flag `--ic3-frames` needs a positive number");
                    return ExitCode::from(2);
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            },
            "ic3-gen" => match cbq::mc::GenMode::parse(value) {
                Some(mode) => tuning.ic3_gen = Some(mode),
                None => {
                    eprintln!(
                        "flag `--ic3-gen` expects `core`, `drop`, `ternary`, `ctg` or \
                         `ctg-deep`, got `{value}`"
                    );
                    return ExitCode::from(2);
                }
            },
            "itp-frames" => match parse_count(flag, value) {
                Ok(n) if n >= 1 => tuning.itp_frames = Some(n as usize),
                Ok(_) => {
                    eprintln!("flag `--itp-frames` needs a positive number");
                    return ExitCode::from(2);
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            },
            "portfolio-bus" => match value {
                "on" => tuning.portfolio_bus = Some(true),
                "off" => tuning.portfolio_bus = Some(false),
                other => {
                    eprintln!("flag `--portfolio-bus` expects `on` or `off`, got `{other}`");
                    return ExitCode::from(2);
                }
            },
            other => {
                let n = match parse_count(other, value) {
                    Ok(n) => n,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::from(2);
                    }
                };
                budget = match other {
                    // `--max` is the legacy spelling of `--steps`.
                    "steps" | "max" => budget.with_steps(n as usize),
                    "nodes" => budget.with_nodes(n as usize),
                    "sat-checks" => budget.with_sat_checks(n),
                    "timeout-ms" => budget.with_timeout(Duration::from_millis(n)),
                    _ => unreachable!("parse_flags rejects unknown flags"),
                };
            }
        }
    }
    // Warn per flag *family*: an engine with a tune hook still ignores
    // the other family's flags (circuit ignores --ic3-*, ic3 ignores the
    // state-set flags), so `supports_tuning` alone is not enough.
    let state_flags = tuning.sweep.is_some()
        || tuning.quant_order.is_some()
        || tuning.partitions.is_some()
        || tuning.split.is_some();
    let ic3_flags = tuning.ic3_frames.is_some() || tuning.ic3_gen.is_some();
    if state_flags && !matches!(engine_name, "circuit" | "forward") {
        eprintln!(
            "note: engine `{engine_name}` ignores --sweep/--quant-order/--partitions/--split \
             (only circuit and forward honour them)"
        );
    }
    if ic3_flags && engine_name != "ic3" {
        eprintln!("note: engine `{engine_name}` ignores --ic3-frames/--ic3-gen");
    }
    if tuning.itp_frames.is_some() && engine_name != "itp" {
        eprintln!("note: engine `{engine_name}` ignores --itp-frames");
    }
    if switches.contains(&"portfolio-par") {
        tuning.portfolio_parallel = Some(true);
    }
    let portfolio_flags = tuning.portfolio_parallel.is_some() || tuning.portfolio_bus.is_some();
    if portfolio_flags && engine_name != "portfolio" {
        eprintln!("note: engine `{engine_name}` ignores --portfolio-par/--portfolio-bus");
    }
    if tuning.portfolio_bus.is_some() && tuning.portfolio_parallel.is_none() {
        eprintln!(
            "note: --portfolio-bus has no effect without --portfolio-par \
             (the sequential cascade shares no lemmas)"
        );
    }
    if tuning.split.is_some() && tuning.partitions.is_none() {
        eprintln!(
            "note: --split has no effect without --partitions \
             (the default single partition never splits)"
        );
    }
    let Some(engine) = by_name_tuned(engine_name, &tuning) else {
        eprintln!(
            "unknown engine `{engine_name}` (expected one of: {})",
            engine_names().join(", ")
        );
        return ExitCode::from(2);
    };
    // Exit 2, not 1: for `check`, exit 1 means "counterexample found".
    let net = match load(&path) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let run = engine.check(&net, &budget);
    if json {
        println!("{}", run_to_json(&run));
    } else {
        println!(
            "{}   [{}, {} iterations, {} peak nodes, {} SAT checks, {:.1} ms]",
            run.verdict,
            run.stats.engine,
            run.stats.iterations,
            run.stats.peak_nodes,
            run.stats.sat_checks,
            run.stats.elapsed.as_secs_f64() * 1e3
        );
        if let Verdict::Unsafe { trace } = &run.verdict {
            print!("{trace}");
            println!(
                "trace replay: {}",
                if trace.validates(&net) {
                    "valid"
                } else {
                    "INVALID"
                }
            );
        }
    }
    match run.verdict {
        Verdict::Safe { .. } => ExitCode::SUCCESS,
        Verdict::Unsafe { .. } => ExitCode::from(1),
        Verdict::Unknown { .. } => ExitCode::from(3),
        Verdict::Bounded { .. } => ExitCode::from(4),
    }
}

const QUANTIFY_HELP: &str = "usage: cbq quantify <file.aag> [--mode M] [--order O]

Eliminates all inputs of output 0 (combinational file) or the primary
inputs of the bad-state cone (sequential file).

  --mode M    naive | merge | full | bdd      (default: full)
  --order O   cheapest | static | given       (default: cheapest)";

fn cmd_quantify(args: &[String]) -> ExitCode {
    if wants_help(args) {
        println!("{QUANTIFY_HELP}");
        return ExitCode::SUCCESS;
    }
    let (path, mode, order_name) = match parse_flags(args, &["mode", "order"], &[]) {
        Ok((positional, flags, _)) if positional.len() == 1 => {
            let mode = flags
                .iter()
                .find(|(f, _)| *f == "mode")
                .map_or("full", |(_, v)| *v);
            let order = flags
                .iter()
                .find(|(f, _)| *f == "order")
                .map_or("cheapest", |(_, v)| *v);
            (
                positional[0].to_string(),
                mode.to_string(),
                order.to_string(),
            )
        }
        Ok((positional, ..)) => {
            eprintln!(
                "expected exactly one <file.aag>, got {}\n\n{QUANTIFY_HELP}",
                positional.len()
            );
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{QUANTIFY_HELP}");
            return ExitCode::from(2);
        }
    };
    // Validate --order up front, whatever the mode; the BDD baseline has
    // no variable schedule, so there the flag is noted and ignored.
    let Some(order) = VarOrder::from_name(&order_name) else {
        eprintln!("unknown order `{order_name}` (expected cheapest, static, or given)");
        return ExitCode::from(2);
    };
    if mode == "bdd" && order != VarOrder::CheapestFirst {
        eprintln!("note: mode `bdd` quantifies inside the decision diagram and ignores --order");
    }
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let file = match cbq::aig::io::parse_aag(&text) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Combinational file: quantify all inputs of output 0. Sequential
    // file: quantify the primary inputs out of the bad-state function.
    let (mut aig, in_vars, f) = match file.build() {
        Ok((aig, in_vars, outs)) => {
            let Some(&f) = outs.first() else {
                eprintln!("error: file has no outputs");
                return ExitCode::FAILURE;
            };
            (aig, in_vars, f)
        }
        Err(_) => match read_network(&text, &path) {
            Ok(net) => (net.aig().clone(), net.primary_inputs().to_vec(), net.bad()),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    println!(
        "before : {} AND gates, {} inputs",
        aig.cone_size(f),
        in_vars.len()
    );
    let start = std::time::Instant::now();
    let (label, lit) = match mode.as_str() {
        "bdd" => match exists_bdd(&mut aig, f, &in_vars, usize::MAX) {
            Some((l, nodes)) => {
                println!("bdd    : {nodes} decision nodes");
                ("bdd".to_string(), l)
            }
            None => {
                eprintln!("bdd blow-up");
                return ExitCode::FAILURE;
            }
        },
        m => {
            let mut cfg = match m {
                "naive" => QuantConfig::naive(),
                "merge" => QuantConfig::merge_only(),
                "full" => QuantConfig::full(),
                other => {
                    eprintln!("unknown mode `{other}` (expected naive, merge, full, or bdd)");
                    return ExitCode::from(2);
                }
            };
            cfg.order = order;
            let mut cnf = AigCnf::new();
            let res = exists_many(&mut aig, f, &in_vars, &mut cnf, &cfg);
            (m.to_string(), res.lit)
        }
    };
    println!(
        "after  : {} AND gates  [{label}, {:.1} ms]",
        aig.cone_size(lit),
        start.elapsed().as_secs_f64() * 1e3
    );
    ExitCode::SUCCESS
}

const SAT_HELP: &str = "usage: cbq sat <file.cnf> [--backend B] [--conflicts N]
               [--proof FILE] [--verify-proof] [--json]

Solves a DIMACS CNF file and prints the verdict plus solver statistics.

  --backend B     arena | reference       (default: arena)
                  `arena` is the incremental CDCL solver on the clause
                  arena; `reference` is the exhaustive differential
                  oracle (UNKNOWN above 24 variables)
  --conflicts N   per-call conflict budget (arena backend only; an
                  exhausted budget prints UNKNOWN)
  --proof FILE    log the solve in DRAT; on UNSATISFIABLE, write the
                  refutation proof to FILE (on any other verdict no
                  file is written)
  --verify-proof  replay the emitted proof through the built-in DRAT
                  checker before writing it (requires --proof; a proof
                  that fails the check is an internal error, exit 2)
  --json          emit the verdict and SolverStats as one JSON object

exit code: 10 satisfiable, 20 unsatisfiable, 3 unknown,
           2 usage/input error";

fn cmd_sat(args: &[String]) -> ExitCode {
    if wants_help(args) {
        println!("{SAT_HELP}");
        return ExitCode::SUCCESS;
    }
    let (path, flags, switches) = match parse_flags(
        args,
        &["backend", "conflicts", "proof"],
        &["json", "verify-proof"],
    ) {
        Ok((positional, flags, switches)) if positional.len() == 1 => {
            (positional[0].to_string(), flags, switches)
        }
        Ok((positional, ..)) => {
            eprintln!(
                "expected exactly one <file.cnf>, got {}\n\n{SAT_HELP}",
                positional.len()
            );
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{SAT_HELP}");
            return ExitCode::from(2);
        }
    };
    let json = switches.contains(&"json");
    let verify_proof = switches.contains(&"verify-proof");
    let mut backend = "arena";
    let mut conflicts: Option<u64> = None;
    let mut proof_path: Option<String> = None;
    for (flag, value) in flags {
        match flag {
            "backend" => match value {
                "arena" | "reference" => backend = value,
                other => {
                    eprintln!("flag `--backend` expects `arena` or `reference`, got `{other}`");
                    return ExitCode::from(2);
                }
            },
            "conflicts" => match parse_count(flag, value) {
                Ok(n) => conflicts = Some(n),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            },
            "proof" => proof_path = Some(value.to_string()),
            _ => unreachable!("parse_flags rejects unknown flags"),
        }
    }
    if verify_proof && proof_path.is_none() {
        eprintln!("error: --verify-proof requires --proof FILE\n\n{SAT_HELP}");
        return ExitCode::from(2);
    }
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let cnf = match dimacs::parse_dimacs(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let proof_mode = if proof_path.is_some() {
        ProofMode::Drat
    } else {
        ProofMode::Off
    };
    let start = std::time::Instant::now();
    let (result, stats, proof) = match backend {
        "arena" => {
            let mut solver = cnf.to_solver_with_proof(proof_mode);
            solver.set_conflict_budget(conflicts);
            let r = SatBackend::solve(&mut solver);
            let proof = SatBackend::drat_proof(&solver);
            (r, Some(solver.stats()), proof)
        }
        _ => {
            let mut solver = ReferenceSolver::new();
            // Proof mode must be set while the solver is still empty.
            SatBackend::set_proof_mode(&mut solver, proof_mode);
            for _ in 0..cnf.num_vars {
                solver.new_var();
            }
            for c in &cnf.clauses {
                solver.add_clause(c);
            }
            let r = SatBackend::solve(&mut solver);
            let proof = SatBackend::drat_proof(&solver);
            (r, None, proof)
        }
    };
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    let verdict = match result {
        SatResult::Sat => "satisfiable",
        SatResult::Unsat => "unsatisfiable",
        SatResult::Unknown => "unknown",
    };
    let mut proof_steps: Option<usize> = None;
    if let Some(out) = &proof_path {
        if result == SatResult::Unsat {
            let Some(text) = proof else {
                eprintln!("error: UNSAT but no DRAT proof was produced");
                return ExitCode::from(2);
            };
            if verify_proof {
                match drat::check_drat(&cnf, &text) {
                    Ok(st) => proof_steps = Some(st.added),
                    Err(e) => {
                        eprintln!("error: emitted proof fails the DRAT check: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            if let Err(e) = std::fs::write(out, &text) {
                eprintln!("error: {out}: {e}");
                return ExitCode::from(2);
            }
        } else {
            eprintln!("note: no proof written to `{out}` (verdict is {verdict}, not UNSAT)");
        }
    }
    if json {
        let solver_field = stats
            .as_ref()
            .map(|s| format!(",\"solver\":{}", solver_json(s)))
            .unwrap_or_default();
        let proof_field = match (&proof_path, result) {
            (Some(out), SatResult::Unsat) => {
                let verified = proof_steps
                    .map(|n| format!(",\"proof_steps\":{n}"))
                    .unwrap_or_default();
                format!(",\"proof\":{}{verified}", json_str(out))
            }
            _ => String::new(),
        };
        println!(
            "{{\"verdict\":{},\"backend\":{},\"vars\":{},\"clauses\":{},\
             \"elapsed_ms\":{elapsed_ms:.3}{solver_field}{proof_field}}}",
            json_str(verdict),
            json_str(backend),
            cnf.num_vars,
            cnf.clauses.len()
        );
    } else {
        println!(
            "{verdict}   [{backend}, {} vars, {} clauses, {elapsed_ms:.1} ms]",
            cnf.num_vars,
            cnf.clauses.len()
        );
        if let Some(s) = stats {
            println!(
                "solver   : {} conflicts, {} decisions, {} propagations, {} restarts",
                s.conflicts, s.decisions, s.propagations, s.restarts
            );
            println!(
                "database : {} learnts kept, {} deleted over {} reductions, arena {} bytes",
                s.learnts,
                s.deleted,
                s.reduces,
                s.arena_bytes()
            );
            println!("lbd hist : {}", json_u64_list(&s.lbd_hist));
        }
        if let (Some(out), SatResult::Unsat) = (&proof_path, result) {
            match proof_steps {
                Some(n) => println!("proof    : {out} ({n} steps, DRAT-checked)"),
                None => println!("proof    : {out}"),
            }
        }
    }
    match result {
        SatResult::Sat => ExitCode::from(10),
        SatResult::Unsat => ExitCode::from(20),
        SatResult::Unknown => ExitCode::from(3),
    }
}

const DOT_HELP: &str = "usage: cbq dot <file.aag>

Emits Graphviz for the bad-state cone on stdout.";

fn cmd_dot(args: &[String]) -> ExitCode {
    if wants_help(args) {
        println!("{DOT_HELP}");
        return ExitCode::SUCCESS;
    }
    let Some(path) = args.first() else {
        eprintln!("{DOT_HELP}");
        return ExitCode::from(2);
    };
    match load(path) {
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
        Ok(net) => {
            print!("{}", cbq::aig::io::write_dot(net.aig(), &[net.bad()]));
            ExitCode::SUCCESS
        }
    }
}

const SERVE_HELP: &str = "usage: cbq serve [--listen ADDR] [--workers N]
                 [--steps N] [--nodes N] [--sat-checks N] [--timeout-ms N]

Runs the model-checking service: line-delimited JSON over TCP, a bounded
worker pool, and a structural result cache (whole-run replay, depth-0
sub-query replay, IC3 warm starts). Blocks until a `shutdown` command
arrives; see README.md for the wire protocol.

  --listen ADDR      bind address (default 127.0.0.1:7297; port 0 picks
                     a free port, reported in the `serving` line)
  --workers N        worker threads (default 2)
  --steps N          per-job cap: at most N engine iterations
  --nodes N          per-job cap: at most N representation nodes
  --sat-checks N     per-job cap: at most N SAT checks
  --timeout-ms N     per-job cap: wall-clock milliseconds

The caps are ceilings: a job's own budget is clamped against them, so a
request can tighten but never widen what the operator allows.";

fn cmd_serve(args: &[String]) -> ExitCode {
    if wants_help(args) {
        println!("{SERVE_HELP}");
        return ExitCode::SUCCESS;
    }
    let parsed = parse_flags(
        args,
        &[
            "listen",
            "workers",
            "steps",
            "nodes",
            "sat-checks",
            "timeout-ms",
        ],
        &[],
    );
    let flags = match parsed {
        Ok((positional, flags, _)) if positional.is_empty() => flags,
        Ok((positional, ..)) => {
            eprintln!("unexpected argument `{}`\n\n{SERVE_HELP}", positional[0]);
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{SERVE_HELP}");
            return ExitCode::from(2);
        }
    };
    let mut cfg = ServeConfig::default();
    for (flag, value) in flags {
        if flag == "listen" {
            cfg.listen = value.to_string();
            continue;
        }
        let n = match parse_count(flag, value) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        };
        match flag {
            "workers" => cfg.workers = n.max(1) as usize,
            "steps" => cfg.caps.max_steps = Some(n as usize),
            "nodes" => cfg.caps.max_nodes = Some(n as usize),
            "sat-checks" => cfg.caps.max_sat_checks = Some(n),
            "timeout-ms" => cfg.caps.timeout = Some(Duration::from_millis(n)),
            _ => unreachable!("parse_flags rejects unknown flags"),
        }
    }
    let server = match Server::bind(cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: bind failed: {e}");
            return ExitCode::from(2);
        }
    };
    match server.local_addr() {
        Ok(addr) => println!(
            "{{\"event\":\"serving\",\"addr\":{}}}",
            json_str(&addr.to_string())
        ),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    }
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: serve loop failed: {e}");
            ExitCode::FAILURE
        }
    }
}

const SUBMIT_HELP: &str = "usage: cbq submit <file.aag> [--to ADDR] [--engine E] [--id N]
                 [--steps N] [--nodes N] [--sat-checks N] [--timeout-ms N]
                 [--no-cache] [--json]
       cbq submit --stats [--to ADDR]
       cbq submit --shutdown [--to ADDR]

Sends one model-checking job to a running `cbq serve` instance and
blocks for the result.

  --to ADDR          server address (default 127.0.0.1:7297)
  --engine E         registry engine to request (default: portfolio)
  --id N             client-chosen job id (default: server assigns)
  --steps/--nodes/--sat-checks/--timeout-ms
                     requested budget (clamped by the server's caps)
  --no-cache         bypass the structural cache for this job
  --json             print the raw result record instead of a summary
  --stats            fetch the server's cache/queue statistics and exit
  --shutdown         stop the server and exit

exit code: 0 safe, 1 unsafe, 2 usage/connection error, 3 unknown,
           4 budget exhausted";

fn cmd_submit(args: &[String]) -> ExitCode {
    if wants_help(args) {
        println!("{SUBMIT_HELP}");
        return ExitCode::SUCCESS;
    }
    let parsed = parse_flags(
        args,
        &[
            "to",
            "engine",
            "id",
            "steps",
            "nodes",
            "sat-checks",
            "timeout-ms",
        ],
        &["no-cache", "json", "stats", "shutdown"],
    );
    let (positional, flags, switches) = match parsed {
        Ok(parts) => parts,
        Err(e) => {
            eprintln!("error: {e}\n\n{SUBMIT_HELP}");
            return ExitCode::from(2);
        }
    };
    let mut addr = "127.0.0.1:7297".to_string();
    let mut request = CheckRequest {
        id: 0,
        model: String::new(),
        engine: "portfolio".to_string(),
        budget: Budget::unlimited(),
        use_cache: !switches.contains(&"no-cache"),
    };
    for (flag, value) in flags {
        match flag {
            "to" => addr = value.to_string(),
            "engine" => request.engine = value.to_string(),
            _ => {
                let n = match parse_count(flag, value) {
                    Ok(n) => n,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::from(2);
                    }
                };
                match flag {
                    "id" => request.id = n,
                    "steps" => request.budget = request.budget.with_steps(n as usize),
                    "nodes" => request.budget = request.budget.with_nodes(n as usize),
                    "sat-checks" => request.budget = request.budget.with_sat_checks(n),
                    "timeout-ms" => {
                        request.budget = request.budget.with_timeout(Duration::from_millis(n));
                    }
                    _ => unreachable!("parse_flags rejects unknown flags"),
                }
            }
        }
    }
    if switches.contains(&"stats") {
        return match client::server_stats(&addr) {
            Ok(stats) => {
                println!("{stats}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        };
    }
    if switches.contains(&"shutdown") {
        return match client::shutdown(&addr) {
            Ok(()) => {
                println!("server at {addr} shut down");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        };
    }
    let [path] = positional[..] else {
        eprintln!(
            "expected exactly one <file.aag>, got {}\n\n{SUBMIT_HELP}",
            positional.len()
        );
        return ExitCode::from(2);
    };
    request.model = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot read `{path}`: {e}");
            return ExitCode::from(2);
        }
    };
    let result = match client::submit_one(&addr, &request) {
        Ok(result) => result,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let field_str = |name: &str| result.get(name).and_then(Json::as_str).unwrap_or("?");
    let field_num = |name: &str| result.get(name).and_then(Json::as_u64);
    if switches.contains(&"json") {
        println!("{result}");
    } else {
        let tier = result
            .get("cache")
            .and_then(|c| c.get("tier"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        let cache_note = match tier {
            1 => ", cache: whole-run hit",
            2 => ", cache: depth-0 hit",
            3 => ", cache: warm start",
            _ => "",
        };
        println!(
            "job {}: {}   [{}, {} iterations{}]",
            field_num("job").unwrap_or(0),
            field_str("verdict"),
            field_str("engine"),
            field_num("iterations").unwrap_or(0),
            cache_note,
        );
    }
    match field_str("verdict") {
        "safe" => ExitCode::SUCCESS,
        "unsafe" => ExitCode::from(1),
        "bounded" => ExitCode::from(4),
        _ => ExitCode::from(3),
    }
}
