//! A minimal, dependency-free drop-in for the subset of the `proptest`
//! crate API this workspace uses: the [`proptest!`] macro (with
//! `#![proptest_config(...)]`, `pat in strategy` and `ident: type`
//! arguments), [`prop_oneof!`], [`prop_assert!`]/[`prop_assert_eq!`],
//! `any::<T>()`, integer-range strategies, tuple strategies,
//! `prop::collection::vec`, and `.prop_map`.
//!
//! The build environment has no network access to crates.io, so the real
//! `proptest` cannot be fetched; this shim keeps the property suites
//! source-compatible and runnable offline. Differences from the real
//! crate, by design:
//!
//! * **Fixed seeds.** Every test's pattern stream is seeded from a hash
//!   of its module path and name — runs are fully reproducible, there is
//!   no persistence file, and a failure always reproduces by re-running
//!   the test.
//! * **No shrinking.** A failing case reports the exact generated input
//!   (all values are `Debug`) instead of a minimised one.
//! * **Uniform generation.** `any::<T>()` draws uniformly; there is no
//!   bias toward edge cases, so suites should (and do) also keep a few
//!   deterministic unit tests for boundary values.

#![forbid(unsafe_code)]

use std::fmt;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Strategies: how values are generated.
pub mod strategy {
    use super::*;

    /// A value generator. The real crate's `Strategy` builds shrinkable
    /// value trees; this shim generates plain values.
    pub trait Strategy {
        /// The type of the generated values.
        type Value: fmt::Debug + Clone;

        /// Draws one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: fmt::Debug + Clone,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(self),
            }
        }
    }

    /// Object-safe generation, for [`BoxedStrategy`].
    trait DynStrategy<T> {
        fn dyn_generate(&self, rng: &mut SmallRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut SmallRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T> {
        inner: std::rc::Rc<dyn DynStrategy<T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T: fmt::Debug + Clone> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            self.inner.dyn_generate(rng)
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: fmt::Debug + Clone,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut SmallRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics on an empty arm list.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T: fmt::Debug + Clone> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            let arm = rng.gen_range(0..self.arms.len());
            self.arms[arm].generate(rng)
        }
    }

    impl Strategy for std::ops::Range<usize> {
        type Value = usize;
        fn generate(&self, rng: &mut SmallRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for std::ops::RangeInclusive<usize> {
        type Value = usize;
        fn generate(&self, rng: &mut SmallRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "cannot sample an empty range");
            let span = (hi - lo) as u64 + 1;
            lo + (rng.next_u64() % span) as usize
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident/$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(S0 / 0);
    tuple_strategy!(S0 / 0, S1 / 1);
    tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
    tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
    tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
    tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);
    tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5, S6 / 6);
    tuple_strategy!(
        S0 / 0,
        S1 / 1,
        S2 / 2,
        S3 / 3,
        S4 / 4,
        S5 / 5,
        S6 / 6,
        S7 / 7
    );
}

/// `any::<T>()` and the types it supports.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::*;

    /// Types with a canonical uniform strategy.
    pub trait Arbitrary: fmt::Debug + Clone {
        /// Draws one uniform value.
        fn arbitrary(rng: &mut SmallRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut SmallRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! uint_arbitrary {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut SmallRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }
    uint_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// The canonical uniform strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::*;

    /// An inclusive size band for generated collections.
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector of `size.into()` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop` facade module (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// The runner, its configuration, and test-case errors.
pub mod test_runner {
    use super::*;

    /// Runner configuration (only `cases` is honoured by the shim).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// Why a test case failed.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The property does not hold.
        Fail(String),
    }

    impl TestCaseError {
        /// A failed property with the given reason.
        pub fn fail(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(reason) => write!(f, "{reason}"),
            }
        }
    }

    /// The result of one test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic seed from the test's full name (FNV-1a).
    fn seed_of(name: &str) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        hash
    }

    /// Drives one property: generates `config.cases` inputs from a
    /// fixed-seed stream and runs the test closure on each.
    pub struct TestRunner {
        config: ProptestConfig,
        rng: SmallRng,
        name: String,
    }

    impl TestRunner {
        /// A runner whose pattern stream is seeded from `name`.
        pub fn new(config: ProptestConfig, name: &str) -> TestRunner {
            TestRunner {
                config,
                rng: SmallRng::seed_from_u64(seed_of(name)),
                name: name.to_string(),
            }
        }

        /// Runs the property; panics (like an ordinary failed test) on
        /// the first failing case, printing the generated input.
        pub fn run<S, F>(&mut self, strategy: &S, test: F)
        where
            S: strategy::Strategy,
            F: Fn(S::Value) -> TestCaseResult,
        {
            for case in 0..self.config.cases {
                let value = strategy.generate(&mut self.rng);
                let shown = value.clone();
                let outcome =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| test(value)));
                match outcome {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => panic!(
                        "proptest case {case} of {name} failed: {e}\ninput: {shown:#?}",
                        name = self.name
                    ),
                    Err(payload) => {
                        eprintln!(
                            "proptest case {case} of {name} panicked\ninput: {shown:#?}",
                            name = self.name
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        }
    }
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(expr)]`, any number of `#[test]` functions whose
/// arguments are `pat in strategy` or `ident: type` (the latter meaning
/// `any::<type>()`), and bodies that may use `?` / `prop_assert!` /
/// early `return Err(...)` with [`test_runner::TestCaseError`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    ($config:expr; ) => {};
    ($config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($args:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_case!(@args ($config), $name, [], $body, $($args)*);
        }
        $crate::__proptest_items!($config; $($rest)*);
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_case {
    // All arguments munched: build the runner over the strategy tuple.
    (@args ($config:expr), $name:ident, [$(($pat:pat, $strat:expr))+], $body:block, ) => {{
        let config: $crate::test_runner::ProptestConfig = $config;
        let mut runner = $crate::test_runner::TestRunner::new(
            config,
            concat!(module_path!(), "::", stringify!($name)),
        );
        runner.run(&($($strat,)+), |($($pat,)+)| {
            $body
            ::core::result::Result::Ok(())
        });
    }};
    // `pat in strategy` argument.
    (@args ($config:expr), $name:ident, [$($done:tt)*], $body:block,
        $pat:pat in $strat:expr, $($rest:tt)*) => {
        $crate::__proptest_case!(@args ($config), $name,
            [$($done)* ($pat, $strat)], $body, $($rest)*)
    };
    (@args ($config:expr), $name:ident, [$($done:tt)*], $body:block,
        $pat:pat in $strat:expr) => {
        $crate::__proptest_case!(@args ($config), $name,
            [$($done)* ($pat, $strat)], $body, )
    };
    // `ident: type` argument, meaning `any::<type>()`.
    (@args ($config:expr), $name:ident, [$($done:tt)*], $body:block,
        $id:ident : $ty:ty, $($rest:tt)*) => {
        $crate::__proptest_case!(@args ($config), $name,
            [$($done)* ($id, $crate::arbitrary::any::<$ty>())], $body, $($rest)*)
    };
    (@args ($config:expr), $name:ident, [$($done:tt)*], $body:block,
        $id:ident : $ty:ty) => {
        $crate::__proptest_case!(@args ($config), $name,
            [$($done)* ($id, $crate::arbitrary::any::<$ty>())], $body, )
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts inside a property; failure aborts the case with a
/// [`test_runner::TestCaseError`] instead of a panic.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion inside a property (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seeds_are_stable_across_runs() {
        use crate::strategy::Strategy;
        let mut r1 = rand::rngs::SmallRng::seed_from_u64(42);
        let mut r2 = rand::rngs::SmallRng::seed_from_u64(42);
        use rand::SeedableRng;
        let s = crate::collection::vec(0..10usize, 1..=8);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Both argument forms, ranges, tuples, oneof, and vec work.
        #[test]
        fn shim_machinery_works(
            xs in prop::collection::vec((0..5usize, any::<bool>()), 0..=4),
            n in 1..=3usize,
            flag: bool,
        ) {
            prop_assert!(xs.len() <= 4);
            prop_assert!((1..=3).contains(&n));
            let _ = flag;
            for (v, _) in &xs {
                prop_assert!(*v < 5, "range strategy out of bounds: {}", v);
            }
        }

        #[test]
        fn oneof_and_map_cover_all_arms(ops in prop::collection::vec(
            prop_oneof![
                (0..3usize).prop_map(|v| ("a", v)),
                (3..6usize).prop_map(|v| ("b", v)),
            ],
            1..=16,
        )) {
            for (tag, v) in &ops {
                match *tag {
                    "a" => prop_assert!(*v < 3),
                    _ => prop_assert!((3..6).contains(v)),
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_input() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(8), "shim::fails");
        runner.run(&(0..10usize,), |(v,)| {
            prop_assert!(v > 100, "generated {} which is never above 100", v);
            Ok(())
        });
    }
}
