//! # cbq-ckt — sequential networks and benchmark circuits
//!
//! The paper evaluates on unnamed "hard-to-verify circuits and
//! properties"; this crate provides the substituted benchmark suite
//! (documented in `DESIGN.md` §5): a sequential network model over
//! [`cbq_aig::Aig`] plus parametric generators for the circuit families
//! used by every experiment — counters, Gray counters, token rings,
//! round-robin arbiters, LFSRs, FIFO controllers, mutual-exclusion
//! controllers and depth-`k` bug circuits, each with safe and (where
//! meaningful) intentionally buggy variants.
//!
//! A [`Network`] is a Mealy-style machine: latches and primary inputs are
//! AIG inputs; next-state functions and the *bad-state* output (AIGER
//! convention: the property holds iff `bad` is unreachable) are AIG
//! literals over them.
//!
//! ## Example
//!
//! ```
//! use cbq_ckt::generators;
//!
//! let net = generators::bounded_counter(4, 10);
//! // Simulate a few steps from the initial state.
//! let mut state = net.initial_state();
//! for _ in 0..3 {
//!     let (next, bad) = net.step(&state, &[]);
//!     assert!(!bad);
//!     state = next;
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod network;
mod trace;

pub mod arith;
pub mod generators;
pub mod io;
pub mod random;

pub use crate::network::{Latch, Network, NetworkBuilder};
pub use crate::trace::Trace;
