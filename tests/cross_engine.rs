//! Cross-engine integration tests: every engine in the registry must
//! agree with the explicit-state oracle — verdict *and* minimal
//! counterexample depth — on the whole benchmark suite. Counterexample
//! traces are additionally replayed on the bit-parallel simulator
//! ([`cbq::aig::sim::BitSim`]), an independent evaluation path from
//! [`Trace::validates`]'s `Network::step`.

use cbq::ckt::generators;
use cbq::ckt::Network;
use cbq::mc::explicit;
use cbq::mc::registry;
use cbq::prelude::*;

mod common;
use common::replays_on_sim;

fn suite() -> Vec<Network> {
    vec![
        generators::bounded_counter(4, 9),
        generators::bounded_counter_gap(4, 5, 11),
        generators::gray_counter(4),
        generators::token_ring(5),
        generators::token_ring_bug(5),
        generators::arbiter(4),
        generators::arbiter_bug(4),
        generators::lfsr(5, &[0, 2]),
        generators::fifo_ctrl(2),
        generators::mutex(),
        generators::mutex_bug(),
        generators::shift_ones(4),
        generators::counter_bug(4, 6),
    ]
}

fn oracle(net: &Network) -> Option<usize> {
    explicit::shortest_cex_depth(net, 10, 1 << 16)
}

/// The suite paired with its (expensive) explicit-state oracle verdicts,
/// computed once so per-engine sweeps don't redo the BFS.
fn suite_with_oracle() -> Vec<(Network, Option<usize>)> {
    suite()
        .into_iter()
        .map(|net| {
            let expected = oracle(&net);
            (net, expected)
        })
        .collect()
}

fn assert_agrees(
    net: &Network,
    expected: Option<usize>,
    verdict: &Verdict,
    engine: &str,
    complete: bool,
    exact_depth: bool,
) {
    match (expected, verdict) {
        (None, Verdict::Safe { .. }) => {}
        (None, other) if !complete => {
            // A refutation-only engine may fail to prove safety, but must
            // never claim a counterexample on a safe circuit.
            assert!(
                !other.is_unsafe(),
                "{engine} on {}: bogus counterexample on a safe circuit",
                net.name()
            );
        }
        (Some(depth), Verdict::Unsafe { trace }) => {
            assert!(
                trace.validates(net),
                "{engine} on {}: trace does not replay",
                net.name()
            );
            assert!(
                replays_on_sim(net, trace),
                "{engine} on {}: trace does not violate the property on the simulator",
                net.name()
            );
            if exact_depth {
                assert_eq!(
                    trace.len(),
                    depth + 1,
                    "{engine} on {}: non-minimal counterexample",
                    net.name()
                );
            }
        }
        (expected, got) => panic!(
            "{engine} on {}: oracle says {expected:?}, engine says {got}",
            net.name()
        ),
    }
}

/// The registry-driven agreement sweep: every registered engine, every
/// suite circuit, one oracle.
#[test]
fn every_registered_engine_matches_oracle() {
    let nets = suite_with_oracle();
    for spec in registry() {
        let engine = (spec.build)();
        for (net, expected) in &nets {
            let run = engine.check(net, &Budget::unlimited());
            assert_eq!(run.stats.engine, spec.name);
            assert_agrees(
                net,
                *expected,
                &run.verdict,
                spec.name,
                spec.complete,
                spec.minimal_cex,
            );
        }
    }
}

/// The simulator replay is not vacuous: it rejects a trace that never
/// drives the circuit into a bad state, and accepts a genuine one.
#[test]
fn sim_replay_distinguishes_real_from_bogus_traces() {
    let net = generators::counter_bug(4, 6);
    // Never asserting the enable keeps the counter at zero: no violation.
    let bogus = Trace::new(vec![vec![false]; 3]);
    assert!(!replays_on_sim(&net, &bogus));
    let run = CircuitUmc::default().check(&net, &Budget::unlimited());
    let trace = run.verdict.trace().expect("counter_bug is unsafe");
    assert!(replays_on_sim(&net, trace));
}

/// Engines constructed by name must be the engines the registry lists.
#[test]
fn by_name_resolves_every_registered_engine() {
    for spec in registry() {
        let engine = <dyn Engine>::by_name(spec.name).expect("registered name resolves");
        assert_eq!(engine.name(), spec.name);
    }
    assert!(<dyn Engine>::by_name("not-an-engine").is_none());
}

#[test]
fn circuit_umc_with_tight_budget_and_enumeration_matches_oracle() {
    use cbq::mc::ResidualPolicy;
    for (net, expected) in suite_with_oracle() {
        let engine = CircuitUmc {
            quant: QuantConfig::full().with_budget(1.1),
            residual: ResidualPolicy::Enumerate { max_rounds: 4096 },
            ..CircuitUmc::default()
        };
        let run = engine.check(&net, &Budget::unlimited());
        assert_agrees(
            &net,
            expected,
            &run.verdict,
            "circuit-umc-partial",
            true,
            true,
        );
    }
}

#[test]
fn partitioned_circuit_umc_matches_oracle() {
    // The partitioned state set against the explicit-state oracle:
    // verdicts and minimal cex depths must survive 4-way partitioning.
    use cbq::mc::{PartitionConfig, PartitionCount};
    for (net, expected) in suite_with_oracle() {
        let engine = CircuitUmc {
            partition: PartitionConfig::with_count(PartitionCount::Fixed(4)),
            ..CircuitUmc::default()
        };
        let run = engine.check(&net, &Budget::unlimited());
        assert_agrees(
            &net,
            expected,
            &run.verdict,
            "circuit-umc-partitioned",
            true,
            true,
        );
    }
}

#[test]
fn activation_reuse_and_rebuild_lifetimes_match_oracle() {
    // The solver ablation of the arena/activation PR: eager sweeping with
    // the persistent activation-literal solver vs the old
    // throw-the-solver-away rebuild — identical verdicts, iteration
    // counts, and minimal cex depths on the whole suite, for both circuit
    // engines. Only the activation runs may retain learnt clauses.
    use cbq::cnf::CnfLifetime;
    use cbq::mc::sweep::SweepConfig as StateSweepConfig;
    use cbq::mc::{CircuitUmcStats, ForwardCircuitUmc, ForwardCircuitUmcStats};
    let mut retained_total = 0;
    for (net, expected) in suite_with_oracle() {
        for lifetime in [CnfLifetime::Activation, CnfLifetime::Rebuild] {
            let sweep = Some(StateSweepConfig {
                lifetime,
                ..StateSweepConfig::eager()
            });
            let run = CircuitUmc {
                sweep: sweep.clone(),
                ..CircuitUmc::default()
            }
            .check(&net, &Budget::unlimited());
            assert_agrees(
                &net,
                expected,
                &run.verdict,
                "circuit-umc-lifetime",
                true,
                true,
            );
            let d = run.detail::<CircuitUmcStats>().expect("stats");
            match lifetime {
                CnfLifetime::Activation => retained_total += d.cnf.learnts_retained,
                CnfLifetime::Rebuild => assert_eq!(
                    d.cnf.learnts_retained,
                    0,
                    "{}: rebuild mode retained learnts",
                    net.name()
                ),
            }
            let run = ForwardCircuitUmc {
                sweep,
                ..ForwardCircuitUmc::default()
            }
            .check(&net, &Budget::unlimited());
            assert_agrees(
                &net,
                expected,
                &run.verdict,
                "forward-umc-lifetime",
                true,
                true,
            );
            let d = run.detail::<ForwardCircuitUmcStats>().expect("stats");
            if lifetime == CnfLifetime::Rebuild {
                assert_eq!(d.cnf.learnts_retained, 0);
            }
        }
    }
    // Across the whole suite, at least one activation run must have
    // carried learnt clauses over a sweep GC (the stat the PR is about).
    assert!(
        retained_total > 0,
        "no learnt clause ever survived a sweep GC across the suite"
    );
}

#[test]
fn ic3_agrees_with_circuit_engines_on_e6_family() {
    // The convergence-based prover against the state-set traversals and
    // BMC on the E6 model families (test-sized instances): identical
    // safe/unsafe classifications everywhere — IC3 closes the safe
    // models BMC can never prove — and every IC3 counterexample replays
    // both through Network::step and on the bit-parallel simulator.
    // Depths are NOT compared: IC3 traces are genuine but need not be
    // minimal (EngineSpec::minimal_cex is false).
    use cbq::mc::{Bmc, ForwardCircuitUmc, Ic3, Ic3Stats};
    let e6_family = vec![
        generators::token_ring(5),
        generators::bounded_counter_gap(4, 6, 12),
        generators::gray_counter(4),
        generators::arbiter(4),
        generators::mutex(),
        generators::lfsr(5, &[0, 2]),
        generators::fifo_ctrl(2),
        generators::token_ring_bug(5),
        generators::mutex_bug(),
        generators::shift_ones(4),
        generators::counter_bug(4, 6),
    ];
    let mut safe_proofs = 0;
    for net in e6_family {
        let ic3 = Ic3::default().check(&net, &Budget::unlimited());
        let circuit = CircuitUmc::default().check(&net, &Budget::unlimited());
        let forward = ForwardCircuitUmc::default().check(&net, &Budget::unlimited());
        assert_eq!(
            ic3.verdict.is_safe(),
            circuit.verdict.is_safe(),
            "{}: ic3 says {}, circuit says {}",
            net.name(),
            ic3.verdict,
            circuit.verdict
        );
        assert_eq!(
            ic3.verdict.is_safe(),
            forward.verdict.is_safe(),
            "{}: ic3 says {}, forward says {}",
            net.name(),
            ic3.verdict,
            forward.verdict
        );
        let bmc = Bmc::default().check(&net, &Budget::unlimited());
        match &ic3.verdict {
            Verdict::Safe { .. } => {
                safe_proofs += 1;
                // BMC alone can never close a safe model.
                assert!(
                    !bmc.verdict.is_conclusive(),
                    "{}: bmc cannot prove safety but says {}",
                    net.name(),
                    bmc.verdict
                );
            }
            Verdict::Unsafe { trace } => {
                assert!(
                    trace.validates(&net),
                    "{}: ic3 trace does not replay",
                    net.name()
                );
                assert!(
                    replays_on_sim(&net, trace),
                    "{}: ic3 trace rejected by the simulator",
                    net.name()
                );
                assert!(
                    bmc.verdict.is_unsafe(),
                    "{}: bmc misses the bug",
                    net.name()
                );
            }
            other => panic!("{}: ic3 inconclusive: {other}", net.name()),
        }
        let detail = ic3.detail::<Ic3Stats>().expect("ic3 stats");
        assert!(detail.frames >= 1, "{}: no frame opened", net.name());
    }
    assert!(
        safe_proofs >= 3,
        "the E6 family should contain several safe models (got {safe_proofs})"
    );
}

#[test]
fn itp_agrees_with_circuit_engines_on_e6_family() {
    // The interpolation engine against the state-set traversal on the E6
    // model families: identical safe/unsafe classifications everywhere.
    // Unlike IC3, itp registers minimal_cex — its counterexamples come
    // from a depth-capped BMC re-run — so on unsafe models the trace
    // depth must equal the circuit engine's, and every trace must replay
    // both through Network::step and on the bit-parallel simulator. On
    // safe models the final interpolant fixpoint is a genuine proof, so
    // the run must report at least one derived interpolant.
    use cbq::mc::{Itp, ItpStats};
    let e6_family = vec![
        generators::token_ring(5),
        generators::bounded_counter_gap(4, 6, 12),
        generators::gray_counter(4),
        generators::arbiter(4),
        generators::mutex(),
        generators::lfsr(5, &[0, 2]),
        generators::fifo_ctrl(2),
        generators::token_ring_bug(5),
        generators::mutex_bug(),
        generators::shift_ones(4),
        generators::counter_bug(4, 6),
    ];
    let mut interpolants_total = 0;
    for net in e6_family {
        let itp = Itp::default().check(&net, &Budget::unlimited());
        let circuit = CircuitUmc::default().check(&net, &Budget::unlimited());
        assert_eq!(
            itp.verdict.is_safe(),
            circuit.verdict.is_safe(),
            "{}: itp says {}, circuit says {}",
            net.name(),
            itp.verdict,
            circuit.verdict
        );
        match (&itp.verdict, &circuit.verdict) {
            (Verdict::Safe { .. }, _) => {
                let detail = itp.detail::<ItpStats>().expect("itp stats");
                assert!(
                    detail.interpolants >= 1 || detail.frames == 0,
                    "{}: safe without deriving an interpolant",
                    net.name()
                );
                interpolants_total += detail.interpolants;
            }
            (Verdict::Unsafe { trace }, Verdict::Unsafe { trace: oracle }) => {
                assert_eq!(
                    trace.len(),
                    oracle.len(),
                    "{}: itp counterexample is not minimal",
                    net.name()
                );
                assert!(
                    trace.validates(&net),
                    "{}: itp trace does not replay",
                    net.name()
                );
                assert!(
                    replays_on_sim(&net, trace),
                    "{}: itp trace rejected by the simulator",
                    net.name()
                );
            }
            (other, _) => panic!("{}: itp inconclusive: {other}", net.name()),
        }
    }
    assert!(
        interpolants_total > 0,
        "no safe model exercised the interpolation path"
    );
}

#[test]
fn ic3_gen_modes_agree_on_e6_family() {
    // The generalization ladder (core < drop < ternary < ctg < ctg-deep)
    // only
    // changes how cubes shrink and how many queries run — never the
    // answer. Every mode must match the circuit engine's classification
    // on every E6 model, and every counterexample must replay both
    // through Network::step and on the bit-parallel simulator.
    use cbq::mc::{GenMode, Ic3, Ic3Stats};
    let e6_family = vec![
        generators::token_ring(5),
        generators::bounded_counter_gap(4, 6, 12),
        generators::gray_counter(4),
        generators::arbiter(4),
        generators::mutex(),
        generators::lfsr(5, &[0, 2]),
        generators::fifo_ctrl(2),
        generators::token_ring_bug(5),
        generators::mutex_bug(),
        generators::shift_ones(4),
        generators::counter_bug(4, 6),
    ];
    for net in e6_family {
        let circuit = CircuitUmc::default().check(&net, &Budget::unlimited());
        for mode in GenMode::ALL {
            let run = Ic3 {
                gen: mode,
                ..Ic3::default()
            }
            .check(&net, &Budget::unlimited());
            assert_eq!(
                run.verdict.is_safe(),
                circuit.verdict.is_safe(),
                "{} ({mode}): ic3 says {}, circuit says {}",
                net.name(),
                run.verdict,
                circuit.verdict
            );
            if let Verdict::Unsafe { trace } = &run.verdict {
                assert!(
                    trace.validates(&net),
                    "{} ({mode}): trace does not replay",
                    net.name()
                );
                assert!(
                    replays_on_sim(&net, trace),
                    "{} ({mode}): trace rejected by the simulator",
                    net.name()
                );
            }
            let detail = run.detail::<Ic3Stats>().expect("ic3 stats");
            if mode < GenMode::Ternary {
                assert_eq!(
                    detail.tern_drops,
                    0,
                    "{} ({mode}): widening ran below Ternary",
                    net.name()
                );
            }
            if mode < GenMode::Ctg {
                assert_eq!(
                    detail.ctg_blocked,
                    0,
                    "{} ({mode}): CTG blocking ran below Ctg",
                    net.name()
                );
            }
            if mode < GenMode::CtgDeep {
                assert_eq!(
                    detail.ctg_deep_blocked,
                    0,
                    "{} ({mode}): recursive CTG blocking ran below CtgDeep",
                    net.name()
                );
            }
        }
    }
}

#[test]
fn parallel_portfolio_matches_sequential_on_e6_family() {
    // The parallel-determinism contract of the portfolio rewrite: the
    // concurrent scoped-thread race (with and without the lemma bus)
    // must return *exactly* the sequential cascade's answer on every E6
    // model — same safe/unsafe classification and, on unsafe models,
    // the same minimal counterexample depth, because the winner is the
    // smallest-index conclusive member and earlier members are never
    // cancelled by later winners.
    use cbq::mc::{Portfolio, PortfolioStats};
    let e6_family = vec![
        generators::token_ring(5),
        generators::bounded_counter_gap(4, 6, 12),
        generators::gray_counter(4),
        generators::arbiter(4),
        generators::mutex(),
        generators::lfsr(5, &[0, 2]),
        generators::fifo_ctrl(2),
        generators::token_ring_bug(5),
        generators::mutex_bug(),
        generators::shift_ones(4),
        generators::counter_bug(4, 6),
    ];
    for net in &e6_family {
        let seq = Portfolio::standard().check(net, &Budget::unlimited());
        for bus in [false, true] {
            let par = Portfolio::standard_parallel(bus).check(net, &Budget::unlimited());
            match (&seq.verdict, &par.verdict) {
                (Verdict::Safe { .. }, Verdict::Safe { .. }) => {}
                (Verdict::Unsafe { trace: s }, Verdict::Unsafe { trace: p }) => {
                    assert!(
                        p.validates(net),
                        "{} (bus={bus}): parallel trace does not replay",
                        net.name()
                    );
                    assert!(
                        replays_on_sim(net, p),
                        "{} (bus={bus}): parallel trace rejected by the simulator",
                        net.name()
                    );
                    assert_eq!(
                        s.len(),
                        p.len(),
                        "{} (bus={bus}): parallel cex depth diverged",
                        net.name()
                    );
                }
                (s, p) => panic!(
                    "{} (bus={bus}): sequential says {s}, parallel says {p}",
                    net.name()
                ),
            }
            let detail = par.detail::<PortfolioStats>().expect("portfolio stats");
            assert!(detail.parallel, "{}: run not marked parallel", net.name());
            assert_eq!(
                detail.bus.is_some(),
                bus,
                "{}: bus stats presence must track the bus switch",
                net.name()
            );
        }
    }
}

#[test]
fn naive_quantification_engine_matches_oracle() {
    // Ablation: even with merge and optimisation disabled, the traversal
    // must stay sound and complete.
    for (net, expected) in suite_with_oracle() {
        let engine = CircuitUmc {
            quant: QuantConfig::naive(),
            ..CircuitUmc::default()
        };
        let run = engine.check(&net, &Budget::unlimited());
        assert_agrees(
            &net,
            expected,
            &run.verdict,
            "circuit-umc-naive",
            true,
            true,
        );
    }
}
