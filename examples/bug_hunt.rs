//! Hunt for bugs: run all engines on intentionally broken circuits,
//! validate every counterexample by concrete replay, and show that all
//! methods agree on the minimal counterexample depth.
//!
//! Run with: `cargo run --example bug_hunt`

use cbq::ckt::generators;
use cbq::mc::explicit;
use cbq::prelude::*;

fn main() {
    let nets = [
        generators::token_ring_bug(6),
        generators::mutex_bug(),
        generators::arbiter_bug(5),
        generators::shift_ones(5),
        generators::counter_bug(5, 11),
    ];
    println!(
        "{:<12} {:>8} {:>12} {:>10} {:>8} {:>10}",
        "circuit", "oracle", "circuit-UMC", "BDD-UMC", "BMC", "induction"
    );
    for net in &nets {
        let oracle = explicit::shortest_cex_depth(net, 8, 1 << 16).expect("bug exists");
        let engines: [(&str, Verdict); 4] = [
            ("circuit", CircuitUmc::default().check(net).verdict),
            ("bdd", BddUmc::default().check(net).verdict),
            ("bmc", Bmc::default().check(net).verdict),
            ("induction", KInduction::default().check(net).verdict),
        ];
        let mut lens = Vec::new();
        for (name, v) in engines {
            let trace = v.trace().unwrap_or_else(|| {
                panic!("{}: engine {name} missed the bug: {v}", net.name())
            });
            assert!(
                trace.validates(net),
                "{}: {name} produced a bogus trace",
                net.name()
            );
            lens.push(trace.len());
        }
        println!(
            "{:<12} {:>8} {:>12} {:>10} {:>8} {:>10}",
            net.name(),
            oracle + 1,
            lens[0],
            lens[1],
            lens[2],
            lens[3]
        );
        // Breadth-first engines must find minimal counterexamples.
        assert!(lens.iter().all(|l| *l == oracle + 1));
    }
    println!("\nevery engine found and validated a minimal counterexample ✓");
}
