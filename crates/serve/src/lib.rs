//! # cbq-serve — the model-checking service
//!
//! A long-running server that accepts model-checking jobs over a TCP
//! socket as line-delimited JSON, schedules them onto a bounded worker
//! pool, and answers from a **content-addressed structural cache**
//! whenever it can.
//!
//! The cache ([`StructuralCache`]) is the point of the subsystem.
//! Regression-style verification workloads re-check near-identical
//! models over and over — the same design after a no-op rebuild, or a
//! lightly perturbed property over an unchanged transition structure —
//! so results are keyed by *structural digest*
//! ([`cbq_aig::Aig::cone_hash_many`] over the δ/bad cones plus the
//! latch/input ordinal bindings), not by file identity. Three tiers:
//!
//! 1. whole-run verdict replay (same model + engine, conclusive
//!    verdicts only);
//! 2. depth-0 sub-query replay (an initial-state refutation outlives
//!    any rewiring of the transition logic);
//! 3. IC3 warm starts (cached frame lemmas from the same transition
//!    structure become [`cbq_mc::Ic3::seed`] candidates, individually
//!    re-validated by the engine before use).
//!
//! The wire protocol (one JSON object per line, both directions) is
//! documented in the workspace `README.md`; [`CheckRequest`] /
//! [`job::process_check`] are its transport-free core, [`Server`] the
//! TCP shell, and [`client`] the matching blocking helpers that `cbq
//! submit` is built on.
//!
//! ## Example
//!
//! ```
//! use cbq_serve::{client, CheckRequest, ServeConfig, Server};
//! use std::sync::Arc;
//!
//! let server = Arc::new(
//!     Server::bind(ServeConfig {
//!         listen: "127.0.0.1:0".to_string(), // free port
//!         ..ServeConfig::default()
//!     })
//!     .expect("bind"),
//! );
//! let addr = server.local_addr().expect("addr").to_string();
//! let handle = {
//!     let server = Arc::clone(&server);
//!     std::thread::spawn(move || server.run())
//! };
//!
//! let net = cbq_ckt::generators::token_ring(4);
//! let request = CheckRequest {
//!     id: 1,
//!     model: cbq_ckt::io::write_network(&net),
//!     engine: "ic3".to_string(),
//!     budget: cbq_mc::Budget::unlimited(),
//!     use_cache: true,
//! };
//! let result = client::submit_one(&addr, &request).expect("result");
//! assert_eq!(
//!     result.get("verdict").and_then(cbq_serve::Json::as_str),
//!     Some("safe")
//! );
//!
//! client::shutdown(&addr).expect("bye");
//! handle.join().unwrap().expect("clean exit");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod job;
pub mod json;
pub mod server;

pub use crate::cache::{CacheStats, CacheTier, ModelKey, StructuralCache};
pub use crate::job::{process_check, CheckRequest, JobOutcome, ServerCaps};
pub use crate::json::Json;
pub use crate::server::{ServeConfig, Server};
