//! Differential cache-correctness suite: every answer the structural
//! cache produces must be indistinguishable (verdict, counterexample
//! depth, iteration count) from what a cold run of the same engine on
//! the same model would report. Runs through the transport-free
//! [`cbq_serve::process_check`] core so the socket layer stays out of
//! the loop.

use std::sync::Mutex;

use cbq_ckt::generators;
use cbq_ckt::io::write_network;
use cbq_ckt::Network;
use cbq_mc::{engine_names, Budget, Ic3Stats};
use cbq_serve::{process_check, CacheTier, CheckRequest, JobOutcome, ServerCaps, StructuralCache};

fn request(net: &Network, engine: &str, id: u64, budget: Budget, use_cache: bool) -> CheckRequest {
    CheckRequest {
        id,
        model: write_network(net),
        engine: engine.to_string(),
        budget,
        use_cache,
    }
}

fn run_job(cache: &Mutex<StructuralCache>, req: &CheckRequest) -> JobOutcome {
    process_check(req, cache, &ServerCaps::default())
}

fn cex_depth(run: &cbq_mc::McRun) -> Option<usize> {
    run.verdict.trace().map(|t| t.len() - 1)
}

/// The E6 family slice the suite sweeps: safe and unsafe members, with
/// depth-0, shallow, and convergence-shaped counterexamples/proofs.
fn models() -> Vec<Network> {
    vec![
        generators::token_ring(4),
        generators::token_ring_bug(4),
        generators::bounded_counter(4, 9),
        generators::counter_bug(4, 9),
        generators::mutex(),
        generators::mutex_bug(),
    ]
}

#[test]
fn cached_runs_are_identical_to_cold_across_engines_and_models() {
    // Deterministic budget only (steps, not wall-clock), so inconclusive
    // outcomes replay bit-identically too. BMC never concludes on safe
    // models without it.
    let budget = Budget::unlimited().with_steps(40);
    let mut id = 0;
    for net in models() {
        for engine in engine_names() {
            let cache = Mutex::new(StructuralCache::new());
            id += 1;
            let cold = run_job(&cache, &request(&net, engine, id, budget.clone(), true));
            id += 1;
            let warm = run_job(&cache, &request(&net, engine, id, budget.clone(), true));
            let ctx = format!("{} / {engine}", net.name());
            let cold_run = cold.run.expect(&ctx);
            let warm_run = warm.run.expect(&ctx);
            assert_eq!(cold.tier, CacheTier::Miss, "{ctx}: first run must miss");
            if cold_run.verdict.is_conclusive() {
                assert_eq!(warm.tier, CacheTier::WholeRun, "{ctx}: second run");
            } else {
                // Inconclusive runs are never cached; the re-run is cold
                // (ic3 may still warm-start from the first run's lemmas).
                assert_ne!(warm.tier, CacheTier::WholeRun, "{ctx}");
            }
            assert_eq!(cold_run.verdict, warm_run.verdict, "{ctx}: verdict");
            assert_eq!(cex_depth(&cold_run), cex_depth(&warm_run), "{ctx}: depth");
            if warm.tier == CacheTier::WholeRun {
                assert_eq!(
                    cold_run.stats.iterations, warm_run.stats.iterations,
                    "{ctx}: iterations"
                );
                assert_eq!(warm_run.job, id, "{ctx}: replay re-tagged");
            }
        }
    }
}

#[test]
fn cross_model_entries_never_leak() {
    // One shared cache over every (model, engine) pair: each warm answer
    // must still match that pair's own cold baseline, proving key
    // discrimination (no collision can survive this sweep undetected).
    let budget = Budget::unlimited().with_steps(40);
    let shared = Mutex::new(StructuralCache::new());
    let mut baselines = Vec::new();
    let mut id = 0;
    for net in models() {
        for engine in engine_names() {
            id += 1;
            let cold = run_job(&shared, &request(&net, engine, id, budget.clone(), true));
            baselines.push((net.clone(), engine, cold.run.expect("cold")));
        }
    }
    for (net, engine, cold_run) in baselines {
        id += 1;
        let warm = run_job(&shared, &request(&net, engine, id, budget.clone(), true));
        let warm_run = warm.run.expect("warm");
        let ctx = format!("{} / {engine}", net.name());
        assert_eq!(cold_run.verdict, warm_run.verdict, "{ctx}: verdict");
        assert_eq!(cex_depth(&cold_run), cex_depth(&warm_run), "{ctx}: depth");
    }
}

/// A structural perturbation that keeps the property's semantics: `bad'
/// = bad ∨ (bad ∧ l₀)` builds new AIG nodes (so every hash moves) while
/// denoting the same predicate.
fn perturb_bad(net: &mut Network) {
    let bad = net.bad();
    let l0 = net.latches()[0].var.lit();
    let redundant = {
        let aig = net.aig_mut();
        let both = aig.and(bad, l0);
        aig.or(bad, both)
    };
    assert_ne!(redundant, bad, "perturbation must be structural");
    net.set_bad(redundant);
}

#[test]
fn warm_start_matches_cold_with_fewer_obligations() {
    let net = generators::bounded_counter_gap(4, 6, 12);
    let cache = Mutex::new(StructuralCache::new());
    let seed_run = run_job(&cache, &request(&net, "ic3", 1, Budget::unlimited(), true));
    assert!(seed_run.run.expect("seed run").verdict.is_safe());

    let mut variant = generators::bounded_counter_gap(4, 6, 12);
    perturb_bad(&mut variant);

    // Cold baseline on the perturbed model, bypassing the cache.
    let cold = run_job(
        &cache,
        &request(&variant, "ic3", 2, Budget::unlimited(), false),
    );
    let cold_run = cold.run.expect("cold");
    assert_eq!(cold.tier, CacheTier::Miss);

    // Cached path: tier 1/2 must miss (the bad cone moved), tier 3 must
    // serve the first run's lemmas.
    let warm = run_job(
        &cache,
        &request(&variant, "ic3", 3, Budget::unlimited(), true),
    );
    let warm_run = warm.run.expect("warm");
    assert_eq!(warm.tier, CacheTier::WarmStart, "expected a tier-3 hit");
    assert_eq!(cold_run.verdict, warm_run.verdict, "warm start is sound");

    let s_cold = cold_run.detail::<Ic3Stats>().expect("stats");
    let s_warm = warm_run.detail::<Ic3Stats>().expect("stats");
    assert!(s_warm.seeded > 0, "no lemma was admitted");
    assert!(
        s_warm.obligations < s_cold.obligations,
        "warm start should discharge fewer obligations ({} vs {})",
        s_warm.obligations,
        s_cold.obligations
    );

    let stats = &cache.lock().unwrap().stats;
    assert_eq!(stats.tier3_hits, 1);
    assert!(warm.line.contains("\"tier\":3"), "{}", warm.line);
}

#[test]
fn warm_start_never_contaminates_unsafe_verdicts() {
    // Cache lemmas from a safe net, then check a variant whose property
    // actually fails: seeds must be rejected or harmless, never capable
    // of masking the counterexample.
    let net = generators::bounded_counter_gap(4, 6, 12);
    let cache = Mutex::new(StructuralCache::new());
    let _ = run_job(&cache, &request(&net, "ic3", 1, Budget::unlimited(), true));

    // Same transition structure, failing property: bad' fires once the
    // counter leaves its reset value (reachable in one step).
    let mut bad_variant = generators::bounded_counter_gap(4, 6, 12);
    let failing = {
        let l0 = bad_variant.latches()[0].var.lit();
        let old = bad_variant.bad();
        bad_variant.aig_mut().or(old, l0)
    };
    bad_variant.set_bad(failing);

    let cold = run_job(
        &cache,
        &request(&bad_variant, "ic3", 2, Budget::unlimited(), false),
    );
    let cold_run = cold.run.expect("cold");
    assert!(cold_run.verdict.is_unsafe(), "variant must fail");

    let warm = run_job(
        &cache,
        &request(&bad_variant, "ic3", 3, Budget::unlimited(), true),
    );
    let warm_run = warm.run.expect("warm");
    assert_eq!(warm.tier, CacheTier::WarmStart, "same δ structure");
    assert_eq!(cold_run.verdict, warm_run.verdict, "cex survives seeding");
    assert_eq!(cex_depth(&cold_run), cex_depth(&warm_run));
}

#[test]
fn depth0_replay_matches_every_engine() {
    // A one-latch model failing at reset, and a rewired variant with the
    // same bad cone over different transition logic. The tier-2 replay
    // must match what each engine reports cold on the *variant*.
    fn depth0(hold: bool) -> Network {
        let mut b = Network::builder(if hold { "hold" } else { "toggle" });
        let s = b.add_latch(true);
        let next = if hold { s.lit() } else { !s.lit() };
        b.set_next(s, next);
        b.build(s.lit())
    }
    let budget = Budget::unlimited().with_steps(40);
    for engine in engine_names() {
        let cache = Mutex::new(StructuralCache::new());
        let first = run_job(
            &cache,
            &request(&depth0(true), engine, 1, budget.clone(), true),
        );
        let first_run = first.run.expect("first");
        let Some(0) = cex_depth(&first_run) else {
            panic!(
                "{engine}: expected a depth-0 refutation, got {:?}",
                first_run.verdict
            );
        };

        let variant = depth0(false);
        let cold = run_job(&cache, &request(&variant, engine, 2, budget.clone(), false));
        let cold_run = cold.run.expect("cold");
        let replay = run_job(&cache, &request(&variant, engine, 3, budget.clone(), true));
        let replay_run = replay.run.expect("replay");
        assert_eq!(replay.tier, CacheTier::Depth0, "{engine}: tier-2 hit");
        assert_eq!(cold_run.verdict, replay_run.verdict, "{engine}: verdict");
        assert_eq!(cex_depth(&cold_run), cex_depth(&replay_run), "{engine}");
        assert_eq!(
            cold_run.stats.iterations, replay_run.stats.iterations,
            "{engine}: depth-0 paths are δ-independent"
        );
    }
}
