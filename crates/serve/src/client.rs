//! Client-side helpers for the line-delimited JSON protocol: one
//! connection per call, blocking until the matching response arrives.
//! `cbq submit` and the end-to-end tests are both built on these.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use crate::job::CheckRequest;
use crate::json::Json;

fn connect(addr: &str) -> Result<TcpStream, String> {
    TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))
}

fn send(stream: &mut TcpStream, line: &str) -> Result<(), String> {
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush())
        .map_err(|e| format!("send: {e}"))
}

fn read_event(lines: &mut impl Iterator<Item = std::io::Result<String>>) -> Result<Json, String> {
    match lines.next() {
        Some(Ok(line)) => Json::parse(&line).map_err(|e| format!("bad response line: {e}")),
        Some(Err(e)) => Err(format!("receive: {e}")),
        None => Err("server closed the connection".to_string()),
    }
}

/// Submits one `check` request and blocks until its `result` (or
/// `error`) event arrives, skipping the `accepted` acknowledgement.
///
/// # Errors
///
/// Returns a message on connection failures, protocol violations, or a
/// server-side `error` event.
pub fn submit_one(addr: &str, request: &CheckRequest) -> Result<Json, String> {
    let mut stream = connect(addr)?;
    send(&mut stream, &request.to_json_line())?;
    let mut lines = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?).lines();
    loop {
        let msg = read_event(&mut lines)?;
        match msg.get("event").and_then(Json::as_str) {
            Some("accepted") => continue,
            Some("result") => return Ok(msg),
            Some("error") => {
                let why = msg
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified");
                return Err(format!("server error: {why}"));
            }
            other => return Err(format!("unexpected event {other:?}")),
        }
    }
}

/// Fetches the server's `stats` record.
///
/// # Errors
///
/// Returns a message on connection failures or protocol violations.
pub fn server_stats(addr: &str) -> Result<Json, String> {
    let mut stream = connect(addr)?;
    send(&mut stream, "{\"cmd\":\"stats\"}")?;
    let mut lines = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?).lines();
    let msg = read_event(&mut lines)?;
    match msg.get("event").and_then(Json::as_str) {
        Some("stats") => Ok(msg),
        other => Err(format!("unexpected event {other:?}")),
    }
}

/// Asks the server to shut down; returns once the `bye` arrives.
///
/// # Errors
///
/// Returns a message on connection failures or protocol violations.
pub fn shutdown(addr: &str) -> Result<(), String> {
    let mut stream = connect(addr)?;
    send(&mut stream, "{\"cmd\":\"shutdown\"}")?;
    let mut lines = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?).lines();
    let msg = read_event(&mut lines)?;
    match msg.get("event").and_then(Json::as_str) {
        Some("bye") => Ok(()),
        other => Err(format!("unexpected event {other:?}")),
    }
}
