//! Prove safety properties with the paper's circuit-based backward
//! reachability, and compare iteration counts and representation sizes
//! against the BDD baseline and k-induction.
//!
//! Run with: `cargo run --example safety_proof`

use cbq::ckt::generators;
use cbq::prelude::*;

fn main() {
    let nets = [
        generators::token_ring(8),
        generators::bounded_counter(6, 40),
        generators::gray_counter(6),
        generators::arbiter(5),
        generators::mutex(),
        generators::lfsr(7, &[0, 1, 3]),
    ];
    println!(
        "{:<12} {:>14} {:>10} {:>14} {:>10} {:>12}",
        "circuit", "circuit-UMC", "AIG peak", "BDD-UMC", "BDD peak", "k-induction"
    );
    for net in &nets {
        let c = CircuitUmc::default().check(net);
        let b = BddUmc::default().check(net);
        let k = KInduction::default().check(net);
        assert!(c.verdict.is_safe(), "{}: {}", net.name(), c.verdict);
        assert!(b.verdict.is_safe(), "{}: {}", net.name(), b.verdict);
        let kres = match &k.verdict {
            Verdict::Safe { iterations } => format!("k={iterations}"),
            other => format!("{other}"),
        };
        println!(
            "{:<12} {:>10} iter {:>10} {:>10} iter {:>10} {:>12}",
            net.name(),
            c.stats.iterations,
            c.stats.peak_nodes,
            b.stats.iterations,
            b.stats.peak_nodes,
            kres
        );
    }
    println!("\nall six circuits proven safe by all engines ✓");
}
