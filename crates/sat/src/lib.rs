//! # cbq-sat — a CDCL SAT solver with an incremental interface
//!
//! The DATE 2005 paper builds its merge and optimisation phases on
//! *factorised* SAT checks: "we load the clause database once and for-all,
//! and we factorize several checks together within a single ZChaff run".
//! This crate provides the solver that makes that workflow possible: a
//! conflict-driven clause-learning (CDCL) solver in the ZChaff/MiniSat
//! lineage with
//!
//! * two-watched-literal propagation,
//! * first-UIP conflict analysis with clause minimisation,
//! * VSIDS variable activities and phase saving,
//! * Luby-sequence restarts and activity-based learnt-clause reduction,
//! * **incremental solving under assumptions** ([`Solver::solve_with`]):
//!   the clause database (including learnt clauses) persists across calls,
//!   so successive equivalence checks share everything already derived,
//! * failed-assumption extraction ([`Solver::failed_assumptions`]) and
//!   conflict budgets ([`Solver::set_conflict_budget`]) for abortable
//!   checks.
//!
//! ## Example
//!
//! ```
//! use cbq_sat::{Solver, SatResult};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause(&[a.pos(), b.pos()]);
//! s.add_clause(&[a.neg(), b.pos()]);
//! assert_eq!(s.solve(), SatResult::Sat);
//! assert_eq!(s.value(b), Some(true));
//! // The same database, incrementally, under an assumption:
//! assert_eq!(s.solve_with(&[b.neg()]), SatResult::Unsat);
//! assert_eq!(s.solve(), SatResult::Sat); // still satisfiable overall
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod solver;
mod types;

pub mod dimacs;
pub mod reference;

pub use crate::solver::{Solver, SolverStats};
pub use crate::types::{Lbool, SatLit, SatResult, SatVar};
