//! The TCP service shell: line-delimited JSON over a socket, a bounded
//! scoped-thread worker pool, and a shared [`StructuralCache`].
//!
//! One thread accepts connections; each connection gets a reader thread
//! that parses requests and enqueues jobs; `workers` pool threads drain
//! the queue through [`crate::job::process_check`]. Responses go back
//! through a per-connection `Mutex<TcpStream>` clone so concurrent
//! writers cannot interleave partial lines. Shutdown is cooperative: the
//! flag flips, a self-connection unblocks `accept`, the condvar wakes
//! the pool, and the scope joins everything.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::cache::StructuralCache;
use crate::job::{
    error_line, lock_recovering, process_check, run_job_guarded, CheckRequest, ServerCaps,
};
use crate::json::Json;

/// Server construction knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7297` (port 0 picks a free one).
    pub listen: String,
    /// Worker-pool size (clamped to at least 1).
    pub workers: usize,
    /// Per-job resource ceilings.
    pub caps: ServerCaps,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            listen: "127.0.0.1:7297".to_string(),
            workers: 2,
            caps: ServerCaps::default(),
        }
    }
}

struct Job {
    request: CheckRequest,
    out: Mutex<TcpStream>,
}

/// A bound model-checking service; [`Server::run`] blocks until a
/// `shutdown` command arrives.
pub struct Server {
    listener: TcpListener,
    cfg: ServeConfig,
    cache: Mutex<StructuralCache>,
    queue: Mutex<VecDeque<Job>>,
    ready: Condvar,
    stop: AtomicBool,
    next_job: AtomicU64,
    jobs_done: AtomicU64,
    /// Aggregate AIG-manager hot-path counters over every completed
    /// quantification-engine job (strash probes / scratchpad walk nodes /
    /// cofactor-cache hits), surfaced by the `stats` command.
    quant_strash_probes: AtomicU64,
    quant_scratch_walk_nodes: AtomicU64,
    quant_cofactor_cache_hits: AtomicU64,
}

impl Server {
    /// Binds the listen address.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.listen)?;
        Ok(Server {
            listener,
            cfg,
            cache: Mutex::new(StructuralCache::new()),
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            stop: AtomicBool::new(false),
            next_job: AtomicU64::new(1),
            jobs_done: AtomicU64::new(0),
            quant_strash_probes: AtomicU64::new(0),
            quant_scratch_walk_nodes: AtomicU64::new(0),
            quant_cofactor_cache_hits: AtomicU64::new(0),
        })
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts and serves connections until shutdown.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures (per-connection errors are
    /// reported to that client and do not stop the server).
    pub fn run(&self) -> std::io::Result<()> {
        std::thread::scope(|s| {
            for _ in 0..self.cfg.workers.max(1) {
                s.spawn(|| self.worker());
            }
            let result = loop {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        if self.stop.load(Ordering::SeqCst) {
                            break Ok(());
                        }
                        s.spawn(move || self.serve_connection(stream));
                    }
                    Err(e) => break Err(e),
                }
            };
            // Wake every idle worker (and stop reader threads) so the
            // scope can join whatever ended the loop.
            self.stop.store(true, Ordering::SeqCst);
            self.ready.notify_all();
            result
        })
    }

    fn worker(&self) {
        loop {
            let job = {
                let mut queue = lock_recovering(&self.queue);
                loop {
                    if let Some(job) = queue.pop_front() {
                        break job;
                    }
                    if self.stop.load(Ordering::SeqCst) {
                        return;
                    }
                    queue = self
                        .ready
                        .wait(queue)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                }
            };
            // The firewall keeps a panicking job from unwinding through
            // this loop (which would poison the queue/cache/stream locks
            // and silently kill this worker for all later jobs): the
            // client gets an `error` record and the worker lives on.
            let id = job.request.id;
            let outcome = run_job_guarded(id, || {
                process_check(&job.request, &self.cache, &self.cfg.caps)
            });
            self.jobs_done.fetch_add(1, Ordering::SeqCst);
            if let Some(run) = &outcome.run {
                let perf = run
                    .detail::<cbq_mc::CircuitUmcStats>()
                    .map(|d| d.quant_perf)
                    .or_else(|| {
                        run.detail::<cbq_mc::ForwardCircuitUmcStats>()
                            .map(|d| d.quant_perf)
                    });
                if let Some(p) = perf {
                    self.quant_strash_probes
                        .fetch_add(p.strash_probes, Ordering::SeqCst);
                    self.quant_scratch_walk_nodes
                        .fetch_add(p.scratch_walk_nodes, Ordering::SeqCst);
                    self.quant_cofactor_cache_hits
                        .fetch_add(p.cofactor_cache_hits, Ordering::SeqCst);
                }
            }
            send_line(&job.out, &outcome.line);
        }
    }

    fn serve_connection(&self, stream: TcpStream) {
        let reader = match stream.try_clone() {
            Ok(clone) => clone,
            Err(_) => return,
        };
        // A finite read timeout lets the thread poll the stop flag, so
        // an idle client cannot pin the scope open past shutdown.
        let _ = reader.set_read_timeout(Some(Duration::from_millis(200)));
        let out = Mutex::new(stream);
        let mut reader = BufReader::new(reader);
        // `buf` persists across timeouts: `read_until` keeps partial
        // bytes it already copied when the clock runs out mid-line.
        let mut buf = Vec::new();
        loop {
            if self.stop.load(Ordering::SeqCst) {
                return;
            }
            match reader.read_until(b'\n', &mut buf) {
                Ok(0) => return, // EOF
                Ok(_) => {
                    let line = String::from_utf8_lossy(&buf).trim().to_string();
                    buf.clear();
                    if !line.is_empty() && !self.dispatch(&line, &out) {
                        return;
                    }
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
                Err(_) => return,
            }
        }
    }

    /// Handles one request line; returns `false` when the connection
    /// (or the whole server) should wind down.
    fn dispatch(&self, line: &str, out: &Mutex<TcpStream>) -> bool {
        let msg = match Json::parse(line) {
            Ok(msg) => msg,
            Err(e) => {
                send_line(out, &error_line(0, &format!("bad request: {e}")));
                return true;
            }
        };
        match msg.get("cmd").and_then(Json::as_str) {
            Some("check") => {
                let id = self.next_job.fetch_add(1, Ordering::SeqCst);
                match CheckRequest::from_json(&msg, id) {
                    Ok(request) => {
                        send_line(
                            out,
                            &format!(
                                "{{\"event\":\"accepted\",\"job\":{},\"engine\":{}}}",
                                request.id,
                                cbq_mc::json::json_str(&request.engine)
                            ),
                        );
                        match lock_recovering(out).try_clone() {
                            Ok(clone) => {
                                let mut queue = lock_recovering(&self.queue);
                                queue.push_back(Job {
                                    request,
                                    out: Mutex::new(clone),
                                });
                                drop(queue);
                                self.ready.notify_one();
                            }
                            Err(_) => return false,
                        }
                    }
                    Err(e) => send_line(out, &error_line(id, &e)),
                }
                true
            }
            Some("stats") => {
                let cache = lock_recovering(&self.cache);
                let quant_perf = cbq_aig::AigPerfCounters {
                    strash_probes: self.quant_strash_probes.load(Ordering::SeqCst),
                    scratch_walk_nodes: self.quant_scratch_walk_nodes.load(Ordering::SeqCst),
                    cofactor_cache_hits: self.quant_cofactor_cache_hits.load(Ordering::SeqCst),
                };
                let line = format!(
                    "{{\"event\":\"stats\",\"jobs_done\":{},\"queued\":{},\"workers\":{},\
                     \"cache_entries\":{},\"cache_stats\":{},\"quant_perf\":{}}}",
                    self.jobs_done.load(Ordering::SeqCst),
                    lock_recovering(&self.queue).len(),
                    self.cfg.workers.max(1),
                    cache.len(),
                    cache.stats.to_json(),
                    cbq_mc::json::quant_perf_json(&quant_perf),
                );
                drop(cache);
                send_line(out, &line);
                true
            }
            Some("shutdown") => {
                self.stop.store(true, Ordering::SeqCst);
                self.ready.notify_all();
                send_line(out, "{\"event\":\"bye\"}");
                // Unblock the accept loop so `run` can return.
                if let Ok(addr) = self.local_addr() {
                    let _ = TcpStream::connect(addr);
                }
                false
            }
            other => {
                let what = other.unwrap_or("<none>");
                send_line(out, &error_line(0, &format!("unknown cmd `{what}`")));
                true
            }
        }
    }
}

/// Writes one response line; errors (client gone) are ignored — the job
/// still ran and its cache entries persist.
fn send_line(out: &Mutex<TcpStream>, line: &str) {
    let mut stream = lock_recovering(out);
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.write_all(b"\n");
    let _ = stream.flush();
}
