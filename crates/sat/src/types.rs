//! Core value types of the SAT solver.

use std::fmt;
use std::ops::Not;

/// A SAT variable (0-based index).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SatVar(pub(crate) u32);

impl SatVar {
    /// Creates a variable from its raw index.
    pub fn from_index(index: usize) -> SatVar {
        SatVar(u32::try_from(index).expect("SAT variable index overflow"))
    }

    /// Raw index, usable to index slices.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    pub fn pos(self) -> SatLit {
        SatLit(self.0 << 1)
    }

    /// The negative literal of this variable (MiniSat's `~x`; not a
    /// numeric negation, hence no `std::ops::Neg` impl).
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> SatLit {
        SatLit((self.0 << 1) | 1)
    }

    /// The literal of this variable with the given polarity
    /// (`true` → positive).
    pub fn lit(self, positive: bool) -> SatLit {
        if positive {
            self.pos()
        } else {
            self.neg()
        }
    }
}

impl fmt::Debug for SatVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A SAT literal: variable plus polarity, encoded as `2 * var + negated`.
///
/// ```
/// use cbq_sat::SatVar;
/// let v = SatVar::from_index(3);
/// assert_eq!(!v.pos(), v.neg());
/// assert!(v.neg().is_negative());
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SatLit(pub(crate) u32);

impl SatLit {
    /// The variable of this literal.
    pub fn var(self) -> SatVar {
        SatVar(self.0 >> 1)
    }

    /// Whether this is the negative-polarity literal.
    pub fn is_negative(self) -> bool {
        self.0 & 1 != 0
    }

    /// Raw code (`2 * var + negated`), usable to index watch lists.
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Creates a literal from its raw code.
    pub fn from_code(code: usize) -> SatLit {
        SatLit(u32::try_from(code).expect("SAT literal code overflow"))
    }

    /// This literal negated iff `flip`.
    pub fn xor_sign(self, flip: bool) -> SatLit {
        SatLit(self.0 ^ flip as u32)
    }
}

impl Not for SatLit {
    type Output = SatLit;

    fn not(self) -> SatLit {
        SatLit(self.0 ^ 1)
    }
}

impl fmt::Debug for SatLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "¬x{}", self.var().0)
        } else {
            write!(f, "x{}", self.var().0)
        }
    }
}

/// A three-valued Boolean, as used for partial assignments.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum Lbool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Unassigned.
    #[default]
    Undef,
}

impl Lbool {
    /// Converts from a concrete Boolean.
    pub fn from_bool(b: bool) -> Lbool {
        if b {
            Lbool::True
        } else {
            Lbool::False
        }
    }

    /// The concrete value if assigned.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Lbool::True => Some(true),
            Lbool::False => Some(false),
            Lbool::Undef => None,
        }
    }

    /// Negation (keeps `Undef`).
    pub fn negate(self) -> Lbool {
        match self {
            Lbool::True => Lbool::False,
            Lbool::False => Lbool::True,
            Lbool::Undef => Lbool::Undef,
        }
    }
}

/// Outcome of a [`Solver`](crate::Solver) run.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// A satisfying assignment was found (query the model).
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// The conflict budget was exhausted before a verdict.
    Unknown,
}

impl SatResult {
    /// Whether this result is [`SatResult::Sat`].
    pub fn is_sat(self) -> bool {
        self == SatResult::Sat
    }

    /// Whether this result is [`SatResult::Unsat`].
    pub fn is_unsat(self) -> bool {
        self == SatResult::Unsat
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding() {
        let v = SatVar::from_index(5);
        assert_eq!(v.pos().code(), 10);
        assert_eq!(v.neg().code(), 11);
        assert_eq!(v.pos().var(), v);
        assert_eq!(v.neg().var(), v);
        assert_eq!(v.lit(true), v.pos());
        assert_eq!(v.lit(false), v.neg());
        assert_eq!(!v.pos(), v.neg());
        assert_eq!(v.pos().xor_sign(true), v.neg());
    }

    #[test]
    fn lbool_algebra() {
        assert_eq!(Lbool::from_bool(true).to_bool(), Some(true));
        assert_eq!(Lbool::Undef.to_bool(), None);
        assert_eq!(Lbool::True.negate(), Lbool::False);
        assert_eq!(Lbool::Undef.negate(), Lbool::Undef);
    }

    #[test]
    fn result_predicates() {
        assert!(SatResult::Sat.is_sat());
        assert!(SatResult::Unsat.is_unsat());
        assert!(!SatResult::Unknown.is_sat());
        assert!(!SatResult::Unknown.is_unsat());
    }
}
