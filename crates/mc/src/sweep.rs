//! SAT-sweeping state-set compaction between reachability iterations.
//!
//! The paper keeps individual quantification results small through its
//! merge and optimisation phases, but a *traversal* accumulates state: the
//! reached set is a growing disjunction of frontiers, the working manager
//! keeps every dead cofactor ever built, and redundancy **across**
//! iterations (a frontier re-deriving logic an earlier frontier already
//! contains) is invisible to the per-quantification passes. This module
//! closes that gap with a fraig-then-collect pipeline run between
//! backward (or forward) iterations:
//!
//! 1. **Simulation-guided candidate classes** — [`cbq_aig::sim::BitSim`]
//!    signatures group the live cones into equivalence candidates;
//! 2. **Assumption-based SAT confirmation** — candidates are proven or
//!    refuted on the shared clause database ([`cbq_cnf::AigCnf`]), with
//!    counterexamples refining the classes (both via [`cbq_cec::sweep`]);
//! 3. **Node merging with structural rehash** — proven merges are applied
//!    and the cones rebuilt over the strashed manager;
//! 4. **Garbage collection** — the manager is rebuilt around the live
//!    roots ([`cbq_aig::Aig::compact`]), actually reclaiming the nodes
//!    that `peak_nodes` used to count forever.
//!
//! Because collection produces a *fresh* manager, every literal and input
//! variable an engine holds must be remapped; [`StateSetSweeper::run`]
//! takes them by mutable reference and rewrites them in place. The SAT
//! bridge is **not** re-created: [`cbq_cnf::AigCnf::migrate`] carries the
//! node↔variable map across the compaction, so surviving cones keep
//! their SAT variables and the solver — learnt clauses, variable
//! activities, phases, and every counter — outlives the collection with
//! nothing re-encoded; orphaned cones are released and purged, and under
//! memory pressure the whole generation is retired by asserting the
//! negated activation literal instead. (The old throw-the-solver-away
//! behaviour is available as [`cbq_cnf::CnfLifetime::Rebuild`] via
//! [`SweepConfig::lifetime`], kept for the ablation experiments.)

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use cbq_aig::sim::BitSim;
use cbq_aig::{Aig, Lit, Var};
use cbq_cec::{sweep as fraig, SweepConfig as FraigConfig};
use cbq_cnf::{AigCnf, CnfLifetime};

use crate::bus::LemmaBus;

/// Configuration of the between-iterations state-set sweep.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// The fraiging tiers (simulation words, BDD sweep, SAT budget).
    pub fraig: FraigConfig,
    /// Trigger a sweep once the manager grows past
    /// `growth_factor ×` its size after the previous sweep.
    pub growth_factor: f64,
    /// Never trigger below this many manager nodes (sweeping a tiny
    /// graph costs more than it reclaims).
    pub min_nodes: usize,
    /// Garbage-collect the manager after merging (rebuilds a fresh AIG
    /// holding only live cones and retires the SAT bridge's cone
    /// generation).
    pub gc: bool,
    /// What a GC does to the clause database: the default
    /// [`CnfLifetime::Activation`] retires dead cones via their
    /// activation literal and keeps everything the solver learnt;
    /// [`CnfLifetime::Rebuild`] throws the solver away (ablation
    /// baseline). Consumed by the partition seeding code, which creates
    /// each partition's bridge with this lifetime.
    pub lifetime: CnfLifetime,
    /// Per-traversal budget deadline: a sweep that would start after this
    /// instant is skipped entirely, and the fraig candidate loop stops
    /// early once it passes (cooperative cancellation, so a sweep can
    /// never push an engine far past its wall-clock budget).
    pub deadline: Option<Instant>,
}

impl Default for SweepConfig {
    fn default() -> SweepConfig {
        SweepConfig {
            fraig: FraigConfig {
                // Confirmation checks should never dominate an iteration:
                // an undecided candidate pair is simply left unmerged.
                sat_budget: Some(20_000),
                ..FraigConfig::default()
            },
            growth_factor: 1.5,
            min_nodes: 256,
            gc: true,
            lifetime: CnfLifetime::default(),
            deadline: None,
        }
    }
}

impl SweepConfig {
    /// A configuration that sweeps at *every* opportunity — used by the
    /// compaction experiments and tests; too eager for production runs.
    pub fn eager() -> SweepConfig {
        SweepConfig {
            growth_factor: 1.0,
            min_nodes: 0,
            ..SweepConfig::default()
        }
    }
}

/// Per-run counters of a [`StateSetSweeper`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Sweeps executed.
    pub runs: usize,
    /// Equivalences proven and merged (BDD + SAT tiers), total.
    pub merged: usize,
    /// Manager nodes before each sweep, summed.
    pub nodes_before: usize,
    /// Manager nodes after each sweep, summed.
    pub nodes_after: usize,
    /// Live AND gates (union cone of all roots) before each sweep, summed.
    pub live_before: usize,
    /// Live AND gates after each sweep, summed.
    pub live_after: usize,
    /// SAT-bridge hand-offs at garbage collection: map migrations that
    /// kept the encoding alive, or full activation-literal retirements
    /// when the memory-pressure valve tripped (the bridge itself always
    /// persists; see [`cbq_cnf::AigCnf::migrate`]).
    pub cnf_gcs: usize,
}

impl SweepStats {
    /// Manager nodes reclaimed by garbage collection, total.
    pub fn reclaimed(&self) -> usize {
        self.nodes_before.saturating_sub(self.nodes_after)
    }

    /// Accumulates another counter record into this one (used to fold the
    /// per-partition sweepers of a partitioned traversal into one total).
    pub fn absorb(&mut self, other: &SweepStats) {
        self.runs += other.runs;
        self.merged += other.merged;
        self.nodes_before += other.nodes_before;
        self.nodes_after += other.nodes_after;
        self.live_before += other.live_before;
        self.live_after += other.live_after;
        self.cnf_gcs += other.cnf_gcs;
    }
}

/// Drives state-set sweeping across the iterations of one traversal.
///
/// The engine calls [`StateSetSweeper::run_if_due`] at each iteration
/// boundary with every literal and input variable it still needs; the
/// sweeper fires only when the manager has outgrown its watermark.
///
/// ```
/// use cbq_aig::Aig;
/// use cbq_cnf::AigCnf;
/// use cbq_mc::sweep::{StateSetSweeper, SweepConfig};
///
/// let mut aig = Aig::new();
/// let a = aig.add_input().lit();
/// let b = aig.add_input().lit();
/// // Two structurally different builds of a ^ b, plus garbage.
/// let x1 = aig.xor(a, b);
/// let or = aig.or(a, b);
/// let nand = !aig.and(a, b);
/// let mut x2 = aig.and(or, nand);
/// let _dead = aig.and(x1, a);
/// let mut x1 = x1;
///
/// let mut cnf = AigCnf::new();
/// let mut sweeper = StateSetSweeper::new(SweepConfig::eager());
/// sweeper.run(&mut aig, &mut cnf, vec![&mut x1, &mut x2], vec![]);
/// assert_eq!(x1, x2); // merged
/// assert_eq!(aig.num_ands(), 3); // one xor cone, garbage collected
/// ```
#[derive(Clone, Debug)]
pub struct StateSetSweeper {
    cfg: SweepConfig,
    /// Manager size right after the previous sweep (or the first `due`
    /// probe); growth is measured against this.
    watermark: Option<usize>,
    /// What happened so far.
    pub stats: SweepStats,
}

impl StateSetSweeper {
    /// Creates a sweeper; nothing happens until the manager crosses the
    /// growth threshold.
    pub fn new(cfg: SweepConfig) -> StateSetSweeper {
        StateSetSweeper {
            cfg,
            watermark: None,
            stats: SweepStats::default(),
        }
    }

    /// Whether the manager has outgrown the watermark enough to justify a
    /// sweep. The first call records the baseline (so with a growth factor
    /// above 1 it never fires immediately).
    pub fn due(&mut self, aig: &Aig) -> bool {
        let nodes = aig.num_nodes();
        let mark = *self.watermark.get_or_insert(nodes);
        nodes >= self.cfg.min_nodes && nodes as f64 >= mark as f64 * self.cfg.growth_factor
    }

    /// The sweeper's configuration (partition splitting clones it into
    /// fresh, zero-counter sweepers for the new siblings).
    pub fn config(&self) -> &SweepConfig {
        &self.cfg
    }

    /// Sets the cooperative cancellation deadline (both the skip check and
    /// the fraig candidate loop honour it).
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.cfg.deadline = deadline;
        self.cfg.fraig.deadline = deadline;
    }

    /// Runs the sweep if [`StateSetSweeper::due`]; returns whether it ran.
    /// A sweep that would start past the configured deadline is skipped.
    pub fn run_if_due(
        &mut self,
        aig: &mut Aig,
        cnf: &mut AigCnf,
        lits: Vec<&mut Lit>,
        vars: Vec<&mut Var>,
    ) -> bool {
        if let Some(deadline) = self.cfg.deadline {
            if Instant::now() >= deadline {
                return false;
            }
        }
        if !self.due(aig) {
            return false;
        }
        self.run(aig, cnf, lits, vars);
        true
    }

    /// Unconditionally sweeps: fraigs the union cone of `lits`, applies
    /// the proven merges, and (if configured) garbage-collects the
    /// manager. All `lits` are rewritten to their post-sweep form and all
    /// `vars` (which must be primary inputs) to their post-collection
    /// variables; the SAT bridge is replaced when the manager is.
    ///
    /// # Panics
    ///
    /// Panics if any of `vars` is not an input of `aig`.
    pub fn run(
        &mut self,
        aig: &mut Aig,
        cnf: &mut AigCnf,
        mut lits: Vec<&mut Lit>,
        mut vars: Vec<&mut Var>,
    ) {
        let roots: Vec<Lit> = lits.iter().map(|l| **l).collect();
        self.stats.runs += 1;
        self.stats.nodes_before += aig.num_nodes();
        self.stats.live_before += aig.cone_size_many(&roots);

        let swept = fraig(aig, &roots, cnf, &self.cfg.fraig);
        self.stats.merged += swept.stats.merged_bdd + swept.stats.merged_sat;
        let mut new_roots = swept.roots;

        if self.cfg.gc {
            // Input *ordinals* survive compaction; variable indices do not.
            let ordinals: Vec<usize> = vars
                .iter()
                .map(|v| aig.input_index(**v).expect("sweep var must be an input"))
                .collect();
            let (packed, packed_roots, var_map) = aig.compact_with_map(&new_roots);
            // Carry the bridge across the compaction: surviving cones keep
            // their SAT variables, so the solver's learnt clauses stay
            // live and nothing re-encodes (under the rebuild-lifetime
            // ablation this degrades to the old fresh-bridge behaviour).
            cnf.migrate(&var_map, packed.num_nodes());
            self.stats.cnf_gcs += 1;
            *aig = packed;
            new_roots = packed_roots;
            for (slot, ord) in vars.iter_mut().zip(ordinals) {
                **slot = aig.input_var(ord);
            }
        }
        for (slot, lit) in lits.iter_mut().zip(&new_roots) {
            **slot = *lit;
        }
        self.stats.nodes_after += aig.num_nodes();
        self.stats.live_after += aig.cone_size_many(&new_roots);
        self.watermark = Some(aig.num_nodes());
    }
}

/// The parallel portfolio's merge **scout**: proves node equivalences
/// over the *original* network's next-state/bad cones — simulation
/// signatures group the candidates, budgeted SAT confirms them — and
/// publishes every proven pair on the lemma bus in original-network
/// coordinates, where IC3's queries (which range over exactly those
/// cones) can absorb them. Consumers re-prove each pair in their own
/// database, so the scout's work is advisory, never trusted.
///
/// Cooperatively cancelled: the candidate loop stops as soon as `cancel`
/// is raised (a sibling found a conclusive answer). Returns the number
/// of merges published.
pub fn merge_scout(net: &cbq_ckt::Network, bus: &LemmaBus, cancel: &AtomicBool) -> usize {
    const SIM_WORDS: usize = 8;
    const SIM_SEED: u64 = 0x5EED;
    const PROOF_CONFLICTS: u64 = 20_000;
    let aig = net.aig();
    let mut roots: Vec<Lit> = net.latches().iter().map(|l| l.next).collect();
    roots.push(net.bad());
    let sim = BitSim::random(aig, SIM_WORDS, SIM_SEED);
    let cone = aig.collect_cone(&roots);
    let mut groups = cbq_aig::SigClasses::with_capacity(cone.len());
    for v in cone {
        if v == Var::CONST {
            continue;
        }
        let (sig, flip) = sim.normalized_signature(v.lit());
        groups.insert(&sig, v.lit().xor_sign(flip));
    }
    let mut pairs = Vec::new();
    for (_, mut members) in groups.into_entries() {
        if members.len() < 2 {
            continue;
        }
        members.sort_unstable();
        let repr = members[0];
        for m in &members[1..] {
            pairs.push((repr, *m));
        }
    }
    pairs.sort_unstable();
    let mut cnf = AigCnf::new();
    let mut published = 0;
    for (a, b) in pairs {
        if cancel.load(Ordering::Relaxed) {
            break;
        }
        if cnf.prove_equiv(aig, a, b, Some(PROOF_CONFLICTS)).is_equiv() {
            bus.publish_merge(a, b);
            published += 1;
        }
    }
    published
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A pair of equivalent-but-structurally-different functions plus
    /// dead logic, for exercising both the merge and the collection.
    fn redundant_setup() -> (Aig, Lit, Lit) {
        let mut aig = Aig::new();
        let ins: Vec<Lit> = (0..4).map(|_| aig.add_input().lit()).collect();
        let f = {
            let x = aig.xor(ins[0], ins[1]);
            aig.or(x, ins[2])
        };
        let g = {
            // Mux re-derivation of the same xor: strashing misses it.
            let or = aig.or(ins[0], ins[1]);
            let nand = !aig.and(ins[0], ins[1]);
            let x = aig.and(or, nand);
            aig.or(x, ins[2])
        };
        let _dead = aig.xor(f, ins[3]);
        (aig, f, g)
    }

    #[test]
    fn sweep_merges_and_collects() {
        let (mut aig, mut f, mut g) = redundant_setup();
        let nodes_before = aig.num_nodes();
        let mut cnf = AigCnf::new();
        let mut sweeper = StateSetSweeper::new(SweepConfig::eager());
        sweeper.run(&mut aig, &mut cnf, vec![&mut f, &mut g], vec![]);
        assert_eq!(f, g, "equivalent roots must merge");
        assert!(aig.num_nodes() < nodes_before, "gc must reclaim nodes");
        assert_eq!(sweeper.stats.runs, 1);
        assert!(sweeper.stats.merged >= 1);
        assert!(sweeper.stats.reclaimed() > 0);
        assert_eq!(sweeper.stats.cnf_gcs, 1);
        assert_eq!(
            cnf.stats().migrations + cnf.stats().retirements,
            1,
            "the GC must hand the bridge across exactly once"
        );
    }

    #[test]
    fn learnt_clauses_persist_across_gc() {
        // Two structurally different parity cones checked under a tiny
        // conflict budget: the equivalence stays undecided (no merge, so
        // both cones survive the GC) but the conflicts spent have learnt
        // real clauses over the surviving cones — and with map migration
        // those clauses must outlive the garbage collection.
        let mut aig = Aig::new();
        let ins: Vec<Lit> = (0..10).map(|_| aig.add_input().lit()).collect();
        let mut f = Lit::FALSE;
        for &x in &ins {
            f = aig.xor(f, x);
        }
        let mut g = Lit::FALSE;
        for &x in ins.iter().rev() {
            g = aig.xor(g, x);
        }
        let _dead = aig.and(f, ins[0]);
        let mut cnf = AigCnf::new();
        let mut cfg = SweepConfig::eager();
        cfg.fraig.use_bdd_sweep = false;
        cfg.fraig.sat_budget = Some(5); // Unknown → no merge, learnts stay
        let mut sweeper = StateSetSweeper::new(cfg);
        let (mut f, mut g) = (f, g);
        let nodes_before = aig.num_nodes();
        sweeper.run(&mut aig, &mut cnf, vec![&mut f, &mut g], vec![]);
        assert_ne!(f, g, "budgeted check must stay undecided");
        assert!(
            aig.num_nodes() < nodes_before,
            "gc must reclaim the dead node"
        );
        assert_eq!(sweeper.stats.cnf_gcs, 1, "gc must have run");
        assert!(
            cnf.stats().learnts_retained > 0,
            "no learnt clause survived the sweep GC: {:?}",
            cnf.stats()
        );
        assert!(
            cnf.solver().stats().learnts > 0,
            "solver lost its learnt database across GC"
        );
        let encoded = cnf.stats().encoded_ands;
        // The persistent solver still answers correctly on the migrated
        // cones — and without re-encoding anything.
        assert_eq!(cnf.solve_under(&aig, &[f]), cbq_sat::SatResult::Sat);
        assert_eq!(
            cnf.prove_equiv(&aig, f, g, None),
            cbq_cnf::EquivResult::Equiv
        );
        assert_eq!(
            cnf.stats().encoded_ands,
            encoded,
            "migrated cones re-encoded"
        );
    }

    #[test]
    fn sweep_preserves_semantics_and_remaps_vars() {
        let (mut aig, mut f, mut g) = redundant_setup();
        let reference = aig.clone();
        let (rf, rg) = (f, g);
        let mut v2 = aig.input_var(2);
        let mut cnf = AigCnf::new();
        let mut sweeper = StateSetSweeper::new(SweepConfig::eager());
        sweeper.run(&mut aig, &mut cnf, vec![&mut f, &mut g], vec![&mut v2]);
        assert_eq!(aig.input_index(v2), Some(2), "ordinal must survive");
        for mask in 0..16u32 {
            let asg: Vec<bool> = (0..4).map(|i| (mask >> i) & 1 != 0).collect();
            assert_eq!(reference.eval(rf, &asg), aig.eval(f, &asg));
            assert_eq!(reference.eval(rg, &asg), aig.eval(g, &asg));
        }
    }

    #[test]
    fn gc_disabled_keeps_manager_and_bridge() {
        let (mut aig, mut f, mut g) = redundant_setup();
        let mut cnf = AigCnf::new();
        let cfg = SweepConfig {
            gc: false,
            ..SweepConfig::eager()
        };
        let mut sweeper = StateSetSweeper::new(cfg);
        sweeper.run(&mut aig, &mut cnf, vec![&mut f, &mut g], vec![]);
        assert_eq!(f, g);
        assert_eq!(sweeper.stats.cnf_gcs, 0);
        // Live size still shrinks even though the manager is kept.
        assert!(sweeper.stats.live_after <= sweeper.stats.live_before);
    }

    #[test]
    fn due_respects_watermark_and_floor() {
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        let _f = aig.and(a, b);
        let mut sweeper = StateSetSweeper::new(SweepConfig {
            growth_factor: 2.0,
            min_nodes: 0,
            ..SweepConfig::default()
        });
        assert!(!sweeper.due(&aig), "first probe only sets the baseline");
        assert!(!sweeper.due(&aig), "no growth yet");
        let mut last = aig.and(a, b);
        for _ in 0..8 {
            let x = aig.add_input().lit();
            last = aig.xor(last, x);
        }
        assert!(sweeper.due(&aig), "manager more than doubled");
        let floor = StateSetSweeper::new(SweepConfig {
            growth_factor: 1.0,
            min_nodes: 1_000_000,
            ..SweepConfig::default()
        });
        let mut floor = floor;
        assert!(!floor.due(&aig));
        assert!(!floor.due(&aig), "below the node floor");
    }
}
