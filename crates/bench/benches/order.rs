//! E3 / Fig. 1 — forward vs backward merge order across similarity.

use criterion::{criterion_group, criterion_main, Criterion};

use cbq_bench::order_run;
use cbq_cec::MergeOrder;

fn bench_order(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3-order");
    g.sample_size(10);
    for rate in [0.0f64, 0.1, 0.5] {
        for order in [MergeOrder::Forward, MergeOrder::Backward] {
            g.bench_function(format!("{order:?}-mut{rate:.1}"), |b| {
                b.iter(|| order_run(rate, order, 150))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_order);
criterion_main!(benches);
