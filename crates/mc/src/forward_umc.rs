//! Forward reachability with circuit-based quantification — an extension
//! beyond the paper's backward traversal.
//!
//! Backward pre-image enjoys free next-state elimination by in-lining;
//! forward **image** does not: `Img(R)(s') = ∃s,i. T(s,i,s') ∧ R(s)`
//! requires quantifying *all* current-state and input variables out of a
//! genuine transition-relation conjunction. This engine exercises the
//! quantification machinery far harder than pre-image and demonstrates
//! that the circuit representation supports both directions; the
//! residual policy (naive completion or all-solutions enumeration)
//! matters much more here.

use cbq_aig::{Aig, Lit, Var};
use cbq_ckt::{Network, Trace};
use cbq_cnf::AigCnf;
use cbq_core::{exists_many, QuantConfig};
use cbq_sat::SatResult;

use crate::circuit_umc::ResidualPolicy;
use crate::engine::{Budget, Engine, Meter};
use crate::ganai::all_solutions_exists;
use crate::verdict::{McRun, McStats, Verdict};

/// Forward-reachability model checker over AIG state sets.
#[derive(Clone, Debug)]
pub struct ForwardCircuitUmc {
    /// Quantification engine configuration.
    pub quant: QuantConfig,
    /// Residual-variable policy (see [`ResidualPolicy`]).
    pub residual: ResidualPolicy,
    /// Iteration bound.
    pub max_iterations: usize,
}

impl Default for ForwardCircuitUmc {
    fn default() -> ForwardCircuitUmc {
        ForwardCircuitUmc {
            quant: QuantConfig::full(),
            residual: ResidualPolicy::Enumerate { max_rounds: 10_000 },
            max_iterations: 10_000,
        }
    }
}

/// Statistics of a [`ForwardCircuitUmc`] run.
#[derive(Clone, Debug, Default)]
pub struct ForwardCircuitUmcStats {
    /// Forward iterations executed.
    pub iterations: usize,
    /// AND-gate count of each frontier (over current-state vars).
    pub frontier_sizes: Vec<usize>,
    /// Total nodes allocated in the working AIG.
    pub peak_nodes: usize,
    /// Input/state variables aborted by partial quantification, total.
    pub quant_aborts: usize,
    /// Cofactors enumerated by the residual policy, total.
    pub ganai_cofactors: usize,
}

/// Bundles the typed stats into the uniform run record.
fn finish(
    verdict: Verdict,
    stats: ForwardCircuitUmcStats,
    sat_checks: u64,
    meter: &Meter,
) -> McRun {
    let common = McStats {
        engine: "forward",
        iterations: stats.iterations,
        peak_nodes: stats.peak_nodes,
        sat_checks,
        elapsed: meter.elapsed(),
    };
    McRun::new(verdict, common).with_detail(stats)
}

impl Engine for ForwardCircuitUmc {
    fn name(&self) -> &'static str {
        "forward"
    }

    /// Runs forward reachability on `net` within `budget`.
    fn check(&self, net: &Network, budget: &Budget) -> McRun {
        let meter = Meter::start(budget);
        let mut aig = net.aig().clone();
        let mut cnf = AigCnf::new();
        let mut stats = ForwardCircuitUmcStats::default();
        if let Some(bounded) = meter.exceeded(0, aig.num_nodes(), 0) {
            stats.peak_nodes = aig.num_nodes();
            return finish(bounded, stats, 0, &meter);
        }

        // Fresh next-state variables and the transition relation
        // T(s, i, s') = ∧ⱼ (s'ⱼ ≡ δⱼ).
        let next_vars: Vec<Var> = net.latches().iter().map(|_| aig.add_input()).collect();
        let trans = {
            let eqs: Vec<Lit> = net
                .latches()
                .iter()
                .zip(&next_vars)
                .map(|(l, nv)| aig.iff(nv.lit(), l.next))
                .collect();
            aig.and_many(&eqs)
        };
        // Variables to eliminate per image: current latches + inputs.
        let mut elim: Vec<Var> = net.latch_vars();
        elim.extend_from_slice(net.primary_inputs());
        // Renaming s' → s after quantification.
        let rename: Vec<(Var, Lit)> = next_vars
            .iter()
            .zip(net.latches())
            .map(|(nv, l)| (*nv, l.var.lit()))
            .collect();

        let init = net.initial_cube().to_lit(&mut aig);
        let mut reached = init;
        let mut frontier = init;
        let mut frontiers = vec![init];
        stats.frontier_sizes.push(aig.cone_size(init));

        for iter in 0..=self.max_iterations {
            if let Some(bounded) = meter.exceeded(iter, aig.num_nodes(), cnf.stats().checks) {
                stats.peak_nodes = aig.num_nodes();
                let checks = cnf.stats().checks;
                return finish(bounded, stats, checks, &meter);
            }
            stats.iterations = iter;
            // Counterexample: a frontier state fires bad under some input.
            if cnf.solve_under(&aig, &[frontier, net.bad()]) == SatResult::Sat {
                let trace = self.extract_trace(&mut aig, net, &mut cnf, &frontiers, iter);
                stats.peak_nodes = aig.num_nodes();
                let checks = cnf.stats().checks;
                return finish(Verdict::Unsafe { trace }, stats, checks, &meter);
            }
            // Image: ∃s,i. T ∧ frontier, then rename s' → s.
            let conj = aig.and(trans, frontier);
            let img_next = self.quantify(&mut aig, conj, &elim, &mut cnf, &mut stats);
            let img = aig.compose(img_next, &rename);
            let new = aig.and(img, !reached);
            if cnf.solve_under(&aig, &[new]) == SatResult::Unsat {
                stats.peak_nodes = aig.num_nodes();
                let checks = cnf.stats().checks;
                return finish(
                    Verdict::Safe {
                        iterations: iter + 1,
                    },
                    stats,
                    checks,
                    &meter,
                );
            }
            frontiers.push(new);
            stats.frontier_sizes.push(aig.cone_size(new));
            reached = aig.or(reached, new);
            frontier = new;
        }
        stats.peak_nodes = aig.num_nodes();
        let checks = cnf.stats().checks;
        let verdict = Verdict::Unknown {
            reason: format!("iteration bound {} reached", self.max_iterations),
        };
        finish(verdict, stats, checks, &meter)
    }
}

impl ForwardCircuitUmc {
    fn quantify(
        &self,
        aig: &mut Aig,
        f: Lit,
        vars: &[Var],
        cnf: &mut AigCnf,
        stats: &mut ForwardCircuitUmcStats,
    ) -> Lit {
        let q = exists_many(aig, f, vars, cnf, &self.quant);
        if q.remaining.is_empty() {
            return q.lit;
        }
        stats.quant_aborts += q.remaining.len();
        match self.residual {
            ResidualPolicy::Naive => {
                exists_many(aig, q.lit, &q.remaining, cnf, &QuantConfig::naive()).lit
            }
            ResidualPolicy::Enumerate { max_rounds } => {
                match all_solutions_exists(aig, q.lit, &q.remaining, cnf, max_rounds) {
                    Some((lit, g)) => {
                        stats.ganai_cofactors += g.cofactors;
                        lit
                    }
                    None => exists_many(aig, q.lit, &q.remaining, cnf, &QuantConfig::naive()).lit,
                }
            }
        }
    }

    /// Walks the counterexample backwards through the forward frontiers,
    /// then emits the input sequence in forward order.
    fn extract_trace(
        &self,
        aig: &mut Aig,
        net: &Network,
        cnf: &mut AigCnf,
        frontiers: &[Lit],
        level: usize,
    ) -> Trace {
        // Concrete final state (in frontier `level`) plus the bad input.
        let r = cnf.solve_under(aig, &[frontiers[level], net.bad()]);
        debug_assert_eq!(r, SatResult::Sat);
        let model = cnf.model_inputs(aig);
        let mut states_rev = vec![read_state(aig, net, &model)];
        let mut inputs_rev = vec![read_inputs(aig, net, &model)];
        for l in (0..level).rev() {
            let target = states_rev.last().expect("non-empty").clone();
            // Predecessor: F_l(s) ∧ (δ(s,i) == target).
            let eq = {
                let eqs: Vec<Lit> = net
                    .latches()
                    .iter()
                    .zip(&target)
                    .map(|(latch, v)| latch.next.xor_sign(!v))
                    .collect();
                aig.and_many(&eqs)
            };
            let r = cnf.solve_under(aig, &[frontiers[l], eq]);
            debug_assert_eq!(r, SatResult::Sat, "predecessor must exist");
            let model = cnf.model_inputs(aig);
            states_rev.push(read_state(aig, net, &model));
            inputs_rev.push(read_inputs(aig, net, &model));
        }
        inputs_rev.reverse();
        Trace::new(inputs_rev)
    }
}

fn read_state(aig: &Aig, net: &Network, model: &[bool]) -> Vec<bool> {
    net.latches()
        .iter()
        .map(|l| model[aig.input_index(l.var).expect("latch input")])
        .collect()
}

fn read_inputs(aig: &Aig, net: &Network, model: &[bool]) -> Vec<bool> {
    net.primary_inputs()
        .iter()
        .map(|v| model[aig.input_index(*v).expect("PI input")])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbq_ckt::generators;

    #[test]
    fn safe_circuits_forward() {
        for net in [
            generators::token_ring(5),
            generators::bounded_counter(4, 9),
            generators::gray_counter(4),
            generators::mutex(),
            generators::lfsr(5, &[0, 2]),
        ] {
            let run = ForwardCircuitUmc::default().check(&net, &Budget::unlimited());
            assert!(run.verdict.is_safe(), "{}: got {}", net.name(), run.verdict);
        }
    }

    #[test]
    fn unsafe_circuits_forward_with_minimal_traces() {
        for (net, depth) in [
            (generators::token_ring_bug(5), 3),
            (generators::mutex_bug(), 2),
            (generators::shift_ones(4), 4),
            (generators::counter_bug(4, 5), 5),
        ] {
            let run = ForwardCircuitUmc::default().check(&net, &Budget::unlimited());
            match &run.verdict {
                Verdict::Unsafe { trace } => {
                    assert!(trace.validates(&net), "{}: bogus trace", net.name());
                    assert_eq!(trace.len(), depth + 1, "{}: non-minimal", net.name());
                }
                other => panic!("{}: expected unsafe, got {other}", net.name()),
            }
        }
    }

    #[test]
    fn forward_iterations_match_reachable_diameter() {
        // bounded_counter(3, 5): 5 reachable states (0..4), so the
        // frontier empties at iteration 5... plus the fixpoint check.
        let run = ForwardCircuitUmc::default()
            .check(&generators::bounded_counter(3, 5), &Budget::unlimited());
        match run.verdict {
            Verdict::Safe { iterations } => assert_eq!(iterations, 5),
            other => panic!("expected safe, got {other}"),
        }
    }

    #[test]
    fn naive_residual_policy_also_works() {
        let engine = ForwardCircuitUmc {
            residual: ResidualPolicy::Naive,
            ..ForwardCircuitUmc::default()
        };
        let run = engine.check(&generators::token_ring(4), &Budget::unlimited());
        assert!(run.verdict.is_safe());
    }
}
