//! Interpolation-based unbounded model checking (McMillan, CAV 2003) on
//! the proof-logging SAT core.
//!
//! Each iteration solves one *bounded* reachability query partitioned
//! into two labelled clause sets:
//!
//! - `A` — the current reachability over-approximation `R(L)` conjoined
//!   with one functional transition step `⋀ᵢ yᵢ ≡ δᵢ(L, P₀)`, where the
//!   `yᵢ` are fresh AIG inputs standing for the next state (the *cut*);
//! - `B` — `bad` asserted at every time step `1 … k`, functionally
//!   unrolled from the cut (`s₁ = Y`, `s_{j+1} = δ(s_j, P_j)` over fresh
//!   input frames).
//!
//! When the query is UNSAT, the in-memory resolution trace
//! ([`cbq_sat::ProofLog`], recorded under [`cbq_sat::ProofMode::Trace`])
//! is labelled by the standard McMillan rules into a Craig interpolant
//! `I(Y)`: an AIG cone over the cut variables that over-approximates the
//! post-image of `R` and still cannot reach `bad` within the unrolling.
//! Substituting `Y → L` (one [`Aig::compose_many`] call — strashing keeps
//! the iterated disjunction compact) gives the next `R := R ∨ I`; when
//! `I ⊆ R` the sequence has closed and `R` is an inductive invariant
//! excluding `bad`, so the model is **safe**. A SAT answer with `R`
//! still equal to the initial states is a *concrete* counterexample of
//! depth ≤ `k`, delegated to [`Bmc`] for a minimal trace; with `R`
//! widened it is abstract — the unrolling deepens and `R` resets.
//!
//! The per-query solver is a fresh [`CnfLifetime::Rebuild`] bridge, so
//! every solve is assumption-free and the UNSAT answer derives a real
//! empty clause — exactly what the proof plane certifies.

use std::collections::HashMap;
use std::sync::Arc;

use cbq_aig::{Aig, Lit, Var};
use cbq_ckt::{Network, Trace};
use cbq_cnf::{AigCnf, CnfLifetime};
use cbq_sat::{ClauseId, ProofLog, ProofMode, SatResult, SatVar};

use crate::bmc::Bmc;
use crate::bus::LemmaBus;
use crate::engine::{Budget, Engine, Meter};
use crate::verdict::{McRun, McStats, Verdict};

/// Proof-plane label of the `A` partition (prefix: `R` + one step).
const LABEL_A: u32 = 1;
/// Proof-plane label of the `B` partition (suffix: the bad unrolling).
const LABEL_B: u32 = 2;

/// The interpolation engine.
#[derive(Clone, Debug)]
pub struct Itp {
    /// Maximum unrolling bound `k`. Interpolation refutes within the
    /// current bound and deepens only on abstract counterexamples, so
    /// this caps the *restart* ladder, not the counterexample depth.
    pub max_frames: usize,
    /// The parallel portfolio's [`LemmaBus`]. On a safe verdict the
    /// engine publishes singleton stuck-latch invariants it can prove
    /// inductive outright (consumers re-validate — zero trust).
    pub bus: Option<Arc<LemmaBus>>,
}

impl Default for Itp {
    fn default() -> Itp {
        Itp {
            max_frames: 64,
            bus: None,
        }
    }
}

/// Statistics of an [`Itp`] run.
#[derive(Clone, Debug, Default)]
pub struct ItpStats {
    /// Final unrolling bound `k`.
    pub frames: usize,
    /// Interpolants folded into `R` (`R := R ∨ I` refinements).
    pub refinements: u64,
    /// Abstract counterexamples: bound increments that reset `R`.
    pub restarts: u64,
    /// Interpolants derived from resolution traces.
    pub interpolants: u64,
    /// Resolution-trace clauses walked by the labelling passes, total.
    pub trace_clauses: u64,
    /// AIG cone size of the last interpolant (over the cut variables).
    pub itp_nodes: usize,
    /// Singleton invariants published on the lemma bus.
    pub published: u64,
    /// SAT checks across all per-query bridges (including delegation).
    pub checks: u64,
}

/// Bundles the typed stats into the uniform run record.
fn finish(verdict: Verdict, stats: ItpStats, peak_nodes: usize, meter: &Meter) -> McRun {
    let common = McStats {
        engine: "itp",
        iterations: stats.frames,
        peak_nodes,
        sat_checks: stats.checks,
        elapsed: meter.elapsed(),
    };
    McRun::new(verdict, common).with_detail(stats)
}

impl Engine for Itp {
    fn name(&self) -> &'static str {
        "itp"
    }

    /// Runs interpolation on `net` within `budget` (`max_steps` caps the
    /// unrolling bound).
    fn check(&self, net: &Network, budget: &Budget) -> McRun {
        let meter = Meter::start(budget);
        let mut run = ItpRun::new(self, net);
        let verdict = run.solve(&meter, net, budget);
        let peak = run.aig.num_nodes();
        finish(verdict, run.stats, peak, &meter)
    }
}

struct ItpRun<'a> {
    cfg: &'a Itp,
    aig: Aig,
    pis: Vec<Var>,
    latches: Vec<Var>,
    deltas: Vec<Lit>,
    init_state: Vec<bool>,
    init_lit: Lit,
    bad: Lit,
    /// Fresh inputs standing for the next state (the interpolation cut).
    ys: Vec<Var>,
    /// `⋀ᵢ yᵢ ≡ δᵢ(L, P₀)` — the transition link, independent of `R`.
    a_eq: Lit,
    /// Frontier state functions of the `B` unrolling (`s_{k+1}`, over
    /// `Y` and the fresh input frames `P₁ … P_k`).
    state: Vec<Lit>,
    /// `bad(s₁) ∨ … ∨ bad(s_k)` for the frames built so far.
    b_any: Lit,
    frames_built: usize,
    stats: ItpStats,
}

impl<'a> ItpRun<'a> {
    fn new(cfg: &'a Itp, net: &Network) -> ItpRun<'a> {
        let mut aig = net.aig().clone();
        let init_lit = net.initial_cube().to_lit(&mut aig);
        let latches = net.latch_vars();
        let deltas: Vec<Lit> = net.latches().iter().map(|l| l.next).collect();
        let ys: Vec<Var> = latches.iter().map(|_| aig.add_input()).collect();
        let eqs: Vec<Lit> = ys
            .iter()
            .zip(&deltas)
            .map(|(y, d)| {
                let x = aig.xor(y.lit(), *d);
                !x
            })
            .collect();
        let a_eq = aig.and_many(&eqs);
        let state: Vec<Lit> = ys.iter().map(|y| y.lit()).collect();
        ItpRun {
            cfg,
            aig,
            pis: net.primary_inputs().to_vec(),
            latches,
            deltas,
            init_state: net.initial_state(),
            init_lit,
            bad: net.bad(),
            ys,
            a_eq,
            state,
            b_any: Lit::FALSE,
            frames_built: 0,
            stats: ItpStats::default(),
        }
    }

    /// Unrolls one more `B` frame: `bad` at the new time step under a
    /// fresh input frame, and the next frontier state.
    fn extend_frames(&mut self) {
        let mut map: Vec<(Var, Lit)> = self
            .latches
            .iter()
            .zip(&self.state)
            .map(|(v, s)| (*v, *s))
            .collect();
        for p in &self.pis {
            let fresh = self.aig.add_input().lit();
            map.push((*p, fresh));
        }
        let mut roots = self.deltas.clone();
        roots.push(self.bad);
        let out = self.aig.compose_many(&roots, &map);
        let bad_j = *out.last().expect("bad root composed");
        self.state = out[..out.len() - 1].to_vec();
        self.b_any = self.aig.or(self.b_any, bad_j);
        self.frames_built += 1;
    }

    /// Model values of `vars` (AIG inputs) after a SAT answer on `cnf`.
    fn read(&self, cnf: &AigCnf, vars: &[Var]) -> Vec<bool> {
        let model = cnf.model_inputs(&self.aig);
        vars.iter()
            .map(|v| model[self.aig.input_index(*v).expect("primary input")])
            .collect()
    }

    fn solve(&mut self, meter: &Meter, net: &Network, budget: &Budget) -> Verdict {
        // Depth 0: `bad` inside the initial states needs no unrolling
        // (and the safety argument below assumes it has been excluded).
        let mut cnf = AigCnf::with_lifetime(CnfLifetime::Rebuild);
        let depth0 = cnf.solve_under(&self.aig, &[self.init_lit, self.bad]);
        self.stats.checks += cnf.stats().checks;
        if depth0 == SatResult::Sat {
            let trace = Trace::new(vec![self.read(&cnf, &self.pis)]);
            return Verdict::Unsafe { trace };
        }
        drop(cnf);

        let mut k = 1;
        self.extend_frames();
        let mut r_lit = self.init_lit;
        loop {
            self.stats.frames = k;
            if let Some(bounded) = meter.exceeded(k - 1, self.aig.num_nodes(), self.stats.checks) {
                return bounded;
            }
            if self.b_any == Lit::FALSE {
                // `bad` collapsed to constant false from an *unconstrained*
                // frame-1 state: unreachable at any positive time, and
                // depth 0 is already excluded.
                return self.conclude_safe(k);
            }
            let a_lit = self.aig.and(r_lit, self.a_eq);
            match self.bounded_query(a_lit) {
                QueryResult::Sat => {
                    if r_lit == self.init_lit {
                        // Concrete counterexample within k steps: delegate
                        // to BMC for a minimal-depth trace.
                        return self.delegate_cex(net, budget, k);
                    }
                    // Abstract counterexample: deepen and restart.
                    if k >= self.cfg.max_frames {
                        return Verdict::Unknown {
                            reason: format!("interpolation frame bound {k} reached"),
                        };
                    }
                    self.stats.restarts += 1;
                    k += 1;
                    self.extend_frames();
                    r_lit = self.init_lit;
                }
                QueryResult::Unsat(itp_y) => {
                    self.stats.interpolants += 1;
                    self.stats.itp_nodes = self.aig.collect_cone(&[itp_y]).len();
                    let sub: Vec<(Var, Lit)> = self
                        .ys
                        .iter()
                        .zip(&self.latches)
                        .map(|(y, l)| (*y, l.lit()))
                        .collect();
                    let itp_l = self.aig.compose_many(&[itp_y], &sub)[0];
                    // Fixpoint test: I ⊆ R closes the approximation
                    // sequence — R is inductive and excludes `bad`.
                    let mut c = AigCnf::with_lifetime(CnfLifetime::Rebuild);
                    let contained = c.solve_under(&self.aig, &[itp_l, !r_lit]);
                    self.stats.checks += c.stats().checks;
                    if contained == SatResult::Unsat {
                        return self.conclude_safe(k);
                    }
                    r_lit = self.aig.or(r_lit, itp_l);
                    self.stats.refinements += 1;
                }
                QueryResult::Broken(reason) => return Verdict::Unknown { reason },
            }
        }
    }

    /// One bounded query `A(R) ∧ B` on a fresh proof-logging bridge.
    /// UNSAT answers return the Craig interpolant over the cut.
    fn bounded_query(&mut self, a_lit: Lit) -> QueryResult {
        let mut cnf = AigCnf::with_lifetime(CnfLifetime::Rebuild);
        cnf.set_proof_mode(ProofMode::Trace);
        cnf.set_clause_label(LABEL_A);
        cnf.assert_lit(&self.aig, a_lit);
        cnf.set_clause_label(LABEL_B);
        cnf.assert_lit(&self.aig, self.b_any);
        let res = cnf.solve_under(&self.aig, &[]);
        self.stats.checks += cnf.stats().checks;
        match res {
            SatResult::Sat => QueryResult::Sat,
            SatResult::Unknown => QueryResult::Broken("solver returned unknown".into()),
            SatResult::Unsat => {
                // Map the cut (and the constant node, if encoded) back to
                // AIG literals; the interpolant mentions nothing else.
                let mut rev: HashMap<SatVar, Lit> = HashMap::new();
                for y in &self.ys {
                    if let Some(sl) = cnf.sat_lit(y.lit()) {
                        rev.insert(sl.var(), y.lit().xor_sign(sl.is_negative()));
                    }
                }
                if let Some(sl) = cnf.sat_lit(Lit::FALSE) {
                    rev.insert(sl.var(), Lit::FALSE.xor_sign(sl.is_negative()));
                }
                let proof = match cnf.solver().proof() {
                    Some(p) => p,
                    None => return QueryResult::Broken("proof plane disabled".into()),
                };
                let num_vars = cnf.solver().num_vars();
                match mcmillan(
                    &mut self.aig,
                    proof,
                    num_vars,
                    &rev,
                    &mut self.stats.trace_clauses,
                ) {
                    Ok(itp) => QueryResult::Unsat(itp),
                    Err(e) => QueryResult::Broken(e),
                }
            }
        }
    }

    /// Safe conclusion: publish the singleton stuck-latch invariants the
    /// engine can prove inductive outright (each one query; consumers
    /// re-validate, so this can cost queries but never verdicts).
    fn conclude_safe(&mut self, k: usize) -> Verdict {
        if let Some(bus) = &self.cfg.bus {
            let mut cnf = AigCnf::with_lifetime(CnfLifetime::Rebuild);
            for (ord, (latch, delta)) in self.latches.iter().zip(&self.deltas).enumerate() {
                let b = self.init_state[ord];
                // `latch = b ∧ δ = ¬b` UNSAT ⇒ the latch can never leave
                // its initial value, so the cube (ord, ¬b) is unreachable.
                let stay = latch.lit().xor_sign(!b);
                let leave = delta.xor_sign(b);
                let res = cnf.solve_under(&self.aig, &[stay, leave]);
                if res == SatResult::Unsat && bus.publish_inductive(vec![(ord, !b)]) {
                    self.stats.published += 1;
                }
            }
            self.stats.checks += cnf.stats().checks;
        }
        Verdict::Safe { iterations: k }
    }

    /// A concrete counterexample of depth ≤ k exists: run BMC capped at
    /// that depth so the reported trace is minimal.
    fn delegate_cex(&mut self, net: &Network, budget: &Budget, k: usize) -> Verdict {
        let bmc = Bmc {
            max_depth: k,
            ..Bmc::default()
        };
        let run = bmc.check(net, budget);
        self.stats.checks += run.stats.sat_checks;
        run.verdict
    }
}

enum QueryResult {
    Sat,
    /// UNSAT, with the interpolant over the cut variables.
    Unsat(Lit),
    /// The trace could not be labelled (never expected; reported as an
    /// `Unknown` verdict instead of panicking inside a portfolio).
    Broken(String),
}

/// McMillan labelling: one forward pass over the resolution DAG rooted
/// at the empty clause, in derivation order.
///
/// Leaves (root clauses): an `A` clause contributes the disjunction of
/// its literals over *global* variables (those occurring in any `B` root
/// clause); a `B` clause contributes ⊤. A resolution step on pivot `v`
/// joins the operands with ∨ when `v` is `A`-local and ∧ otherwise.
/// Partition membership keys on **root** labels only — derived clauses
/// carry whatever label was active when they were learnt.
fn mcmillan(
    aig: &mut Aig,
    proof: &ProofLog,
    num_vars: usize,
    rev: &HashMap<SatVar, Lit>,
    walked: &mut u64,
) -> Result<Lit, String> {
    let empty = proof
        .empty_id()
        .ok_or_else(|| "resolution trace has no empty clause".to_string())?;
    let n = proof.num_clauses();
    // Restrict the pass to clauses the empty derivation depends on.
    let mut need = vec![false; n];
    let mut stack = vec![empty];
    while let Some(id) = stack.pop() {
        if need[id as usize] {
            continue;
        }
        need[id as usize] = true;
        if let Some((base, steps)) = proof.chain(id) {
            stack.push(base);
            stack.extend(steps.iter().map(|&(_, side)| side));
        }
    }
    let mut in_b = vec![false; num_vars];
    for id in 0..n as ClauseId {
        if proof.is_root(id) && proof.clause_label(id) == LABEL_B {
            for l in proof.lits(id) {
                in_b[l.var().index()] = true;
            }
        }
    }
    let mut itp: Vec<Option<Lit>> = vec![None; n];
    for id in 0..n as ClauseId {
        if !need[id as usize] {
            continue;
        }
        *walked += 1;
        let value = match proof.chain(id) {
            None => {
                if proof.clause_label(id) == LABEL_B {
                    Lit::TRUE
                } else {
                    let mut acc = Lit::FALSE;
                    for l in proof.lits(id) {
                        if in_b[l.var().index()] {
                            let base = rev.get(&l.var()).ok_or_else(|| {
                                format!("global sat var {} outside the cut", l.var().index())
                            })?;
                            let t = base.xor_sign(l.is_negative());
                            acc = aig.or(acc, t);
                        }
                    }
                    acc
                }
            }
            Some((base, steps)) => {
                let mut acc = itp[base as usize]
                    .ok_or_else(|| "chain references a later clause".to_string())?;
                for &(pivot, side) in steps {
                    let s = itp[side as usize]
                        .ok_or_else(|| "chain references a later clause".to_string())?;
                    acc = if in_b[pivot.index()] {
                        aig.and(acc, s)
                    } else {
                        aig.or(acc, s)
                    };
                }
                acc
            }
        };
        itp[id as usize] = Some(value);
    }
    itp[empty as usize].ok_or_else(|| "empty clause left unlabelled".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::{check_safe, check_unsafe};
    use cbq_ckt::generators;

    #[test]
    fn proves_safe_models() {
        check_safe(&Itp::default(), &generators::mutex());
        check_safe(&Itp::default(), &generators::token_ring(4));
        check_safe(&Itp::default(), &generators::gray_counter(4));
        check_safe(&Itp::default(), &generators::bounded_counter_gap(4, 6, 12));
    }

    #[test]
    fn refutes_with_minimal_traces() {
        check_unsafe(&Itp::default(), &generators::mutex_bug(), Some(2));
        check_unsafe(&Itp::default(), &generators::token_ring_bug(5), Some(3));
        check_unsafe(&Itp::default(), &generators::counter_bug(4, 6), Some(6));
    }

    #[test]
    fn reports_stats_and_converges() {
        let run = Itp::default().check(
            &generators::token_ring(4),
            &crate::engine::Budget::unlimited(),
        );
        assert!(run.verdict.is_safe());
        let detail = run.detail::<ItpStats>().expect("itp stats");
        assert!(detail.frames >= 1, "no frame opened");
        assert!(detail.interpolants >= 1, "safety without an interpolant");
        assert!(detail.checks > 0);
        assert_eq!(run.stats.sat_checks, detail.checks);
    }

    #[test]
    fn frame_cap_reports_unknown() {
        // The gap counter needs deeper unrollings than one frame before
        // the interpolant sequence closes; a bound of 1 must give up
        // with Unknown, never a wrong verdict.
        let capped = Itp {
            max_frames: 1,
            ..Itp::default()
        };
        let run = capped.check(
            &generators::bounded_counter_gap(4, 6, 12),
            &crate::engine::Budget::unlimited(),
        );
        assert!(
            matches!(run.verdict, Verdict::Unknown { .. }) || run.verdict.is_safe(),
            "cap must stay sound, got {}",
            run.verdict
        );
        assert!(!run.verdict.is_unsafe());
    }

    #[test]
    fn publishes_singleton_invariants_on_safe() {
        use cbq_ckt::Network;
        // One latch stuck at its initial value (next = itself), bad when
        // it flips: safe, and the stuck-latch probe must publish.
        let mut b = Network::builder("stuck");
        let l = b.add_latch(false);
        b.set_next(l, l.lit());
        let net = b.build(l.lit());
        let bus = Arc::new(LemmaBus::new());
        let engine = Itp {
            bus: Some(bus.clone()),
            ..Itp::default()
        };
        let run = engine.check(&net, &crate::engine::Budget::unlimited());
        assert!(run.verdict.is_safe(), "got {}", run.verdict);
        let detail = run.detail::<ItpStats>().expect("itp stats");
        assert_eq!(detail.published, 1, "the stuck latch publishes");
    }
}
