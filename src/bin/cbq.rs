//! `cbq` — command-line front end for the circuit-based quantification
//! stack.
//!
//! ```text
//! cbq gen <family> [N [K]]            emit a benchmark circuit as ASCII AIGER
//! cbq info <file.aag>                 print circuit statistics
//! cbq check <file.aag> [--engine E] [--max N]
//!                                     model-check (E: circuit | forward |
//!                                     bdd | bdd-forward | bmc | kind)
//! cbq quantify <file.aag> [--mode M]  eliminate all inputs of output 0 of a
//!                                     combinational file (M: naive | merge |
//!                                     full | bdd)
//! cbq dot <file.aag>                  emit Graphviz for the bad-state cone
//! ```

use std::process::ExitCode;

use cbq::ckt::io::{read_network, write_network};
use cbq::ckt::{generators, Network};
use cbq::mc::{BddDirection, BddUmc, Bmc, CircuitUmc, ForwardCircuitUmc, KInduction, Verdict};
use cbq::prelude::*;
use cbq::quant::{exists_bdd, exists_many};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("quantify") => cmd_quantify(&args[1..]),
        Some("dot") => cmd_dot(&args[1..]),
        _ => {
            eprintln!("usage: cbq <gen|info|check|quantify|dot> ...  (see --help in source)");
            ExitCode::from(2)
        }
    }
}

fn parse_num(args: &[String], i: usize, default: u64) -> u64 {
    args.get(i).and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn cmd_gen(args: &[String]) -> ExitCode {
    let Some(family) = args.first() else {
        eprintln!("usage: cbq gen <family> [N [K]]");
        eprintln!("families: counter, counter-bug, gap, gray, ring, ring-bug, arbiter, arbiter-bug, lfsr, fifo, mutex, mutex-bug, shift");
        return ExitCode::from(2);
    };
    let n = parse_num(args, 1, 8) as usize;
    let k = parse_num(args, 2, 0);
    let net = match family.as_str() {
        "counter" => generators::bounded_counter(n, if k == 0 { (1 << n) as u64 - 2 } else { k }),
        "counter-bug" => generators::counter_bug(n, if k == 0 { 10 } else { k }),
        "gap" => generators::bounded_counter_gap(n, k.max(2), k.max(2) + 10),
        "gray" => generators::gray_counter(n),
        "ring" => generators::token_ring(n),
        "ring-bug" => generators::token_ring_bug(n.max(4)),
        "arbiter" => generators::arbiter(n),
        "arbiter-bug" => generators::arbiter_bug(n),
        "lfsr" => generators::lfsr(n, &[0, 2, 3]),
        "fifo" => generators::fifo_ctrl(n.min(8)),
        "mutex" => generators::mutex(),
        "mutex-bug" => generators::mutex_bug(),
        "shift" => generators::shift_ones(n),
        other => {
            eprintln!("unknown family `{other}`");
            return ExitCode::from(2);
        }
    };
    print!("{}", write_network(&net));
    ExitCode::SUCCESS
}

fn load(path: &str) -> Result<Network, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    read_network(&text, path).map_err(|e| format!("{path}: {e}"))
}

fn cmd_info(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("usage: cbq info <file.aag>");
        return ExitCode::from(2);
    };
    match load(path) {
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
        Ok(net) => {
            let aig = net.aig();
            let mut roots: Vec<Lit> = net.latches().iter().map(|l| l.next).collect();
            roots.push(net.bad());
            let stats = aig.cone_stats(&roots);
            println!("name     : {}", net.name());
            println!("latches  : {}", net.num_latches());
            println!("inputs   : {}", net.num_inputs());
            println!("and gates: {}", stats.ands);
            println!("depth    : {}", stats.depth);
            println!("initial  : {}", net.initial_cube());
            ExitCode::SUCCESS
        }
    }
}

fn cmd_check(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("usage: cbq check <file.aag> [--engine E] [--max N]");
        return ExitCode::from(2);
    };
    let net = match load(path) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let engine = flag_value(args, "--engine").unwrap_or("circuit");
    let max = flag_value(args, "--max")
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(64);
    let start = std::time::Instant::now();
    let verdict = match engine {
        "circuit" => CircuitUmc::default().check(&net).verdict,
        "forward" => ForwardCircuitUmc::default().check(&net).verdict,
        "bdd" => BddUmc::default().check(&net).verdict,
        "bdd-forward" => BddUmc {
            direction: BddDirection::Forward,
            ..BddUmc::default()
        }
        .check(&net)
        .verdict,
        "bmc" => Bmc { max_depth: max }.check(&net).verdict,
        "kind" => KInduction {
            max_k: max,
            simple_path: true,
        }
        .check(&net)
        .verdict,
        other => {
            eprintln!("unknown engine `{other}`");
            return ExitCode::from(2);
        }
    };
    let elapsed = start.elapsed();
    println!("{verdict}   [{engine}, {:.1} ms]", elapsed.as_secs_f64() * 1e3);
    if let Verdict::Unsafe { trace } = &verdict {
        print!("{trace}");
        println!(
            "trace replay: {}",
            if trace.validates(&net) { "valid" } else { "INVALID" }
        );
    }
    match verdict {
        Verdict::Safe { .. } => ExitCode::SUCCESS,
        Verdict::Unsafe { .. } => ExitCode::from(1),
        Verdict::Unknown { .. } => ExitCode::from(3),
    }
}

fn cmd_quantify(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("usage: cbq quantify <file.aag> [--mode naive|merge|full|bdd]");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let file = match cbq::aig::io::parse_aag(&text) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Combinational file: quantify all inputs of output 0. Sequential
    // file: quantify the primary inputs out of the bad-state function.
    let (mut aig, in_vars, f) = match file.build() {
        Ok((aig, in_vars, outs)) => {
            let Some(&f) = outs.first() else {
                eprintln!("error: file has no outputs");
                return ExitCode::FAILURE;
            };
            (aig, in_vars, f)
        }
        Err(_) => match read_network(&text, path) {
            Ok(net) => (net.aig().clone(), net.primary_inputs().to_vec(), net.bad()),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let mode = flag_value(args, "--mode").unwrap_or("full");
    println!("before : {} AND gates, {} inputs", aig.cone_size(f), in_vars.len());
    let start = std::time::Instant::now();
    let (label, lit) = match mode {
        "bdd" => match exists_bdd(&mut aig, f, &in_vars, usize::MAX) {
            Some((l, nodes)) => {
                println!("bdd    : {nodes} decision nodes");
                ("bdd", l)
            }
            None => {
                eprintln!("bdd blow-up");
                return ExitCode::FAILURE;
            }
        },
        m => {
            let cfg = match m {
                "naive" => QuantConfig::naive(),
                "merge" => QuantConfig::merge_only(),
                "full" => QuantConfig::full(),
                other => {
                    eprintln!("unknown mode `{other}`");
                    return ExitCode::from(2);
                }
            };
            let mut cnf = AigCnf::new();
            let res = exists_many(&mut aig, f, &in_vars, &mut cnf, &cfg);
            (m, res.lit)
        }
    };
    println!(
        "after  : {} AND gates  [{label}, {:.1} ms]",
        aig.cone_size(lit),
        start.elapsed().as_secs_f64() * 1e3
    );
    ExitCode::SUCCESS
}

fn cmd_dot(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("usage: cbq dot <file.aag>");
        return ExitCode::from(2);
    };
    match load(path) {
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
        Ok(net) => {
            print!("{}", cbq::aig::io::write_dot(net.aig(), &[net.bad()]));
            ExitCode::SUCCESS
        }
    }
}
